//! Small statistics helpers used when aggregating experiment results.

use std::fmt;

/// Arithmetic mean of a slice. Returns NaN for an empty slice so that an
/// absent statistic is distinguishable from a genuine zero (the JSON writer
/// maps non-finite values to `null`, and tables render them as `-`).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Geometric mean of a slice of positive values. Non-positive values are
/// ignored; returns 0.0 if nothing remains.
pub fn geomean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0 && v.is_finite())
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Harmonic mean of a slice of positive values. Non-positive values are
/// ignored; returns 0.0 if nothing remains.
pub fn harmonic_mean(values: &[f64]) -> f64 {
    let inv: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0 && v.is_finite())
        .map(|v| 1.0 / v)
        .collect();
    if inv.is_empty() {
        return 0.0;
    }
    inv.len() as f64 / inv.iter().sum::<f64>()
}

/// Sample standard deviation. Returns 0.0 for fewer than two values.
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Linear-interpolated percentile (`p` in `[0, 100]`). Returns NaN for an
/// empty slice. The input does not need to be sorted.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// A one-pass summary (count, min, max, mean) of a stream of samples.
///
/// # Example
///
/// ```
/// use gpreempt_sim::Summary;
///
/// let mut s = Summary::new();
/// for v in [1.0, 2.0, 3.0] {
///     s.record(v);
/// }
/// assert_eq!(s.count(), 3);
/// assert_eq!(s.mean(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    /// Identical to [`Summary::new`]. A derived `Default` would seed
    /// `min`/`max` at 0.0 instead of ±∞, so `Summary::default()` followed by
    /// `record(5.0)` would report `min == 0.0`.
    fn default() -> Self {
        Summary::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Non-finite samples are ignored.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (NaN when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum sample (NaN when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum sample (NaN when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Formats a statistic for a table cell: `-` when the value is non-finite
/// (the empty-input sentinel), otherwise the value at the given precision.
/// Keeps absent statistics visually distinct from a genuine zero.
pub fn fmt_stat(value: f64, precision: usize) -> String {
    if value.is_finite() {
        format!("{value:.precision$}")
    } else {
        "-".to_string()
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count,
            fmt_stat(self.mean(), 4),
            fmt_stat(self.min(), 4),
            fmt_stat(self.max(), 4)
        )
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_values() {
        assert!(mean(&[]).is_nan());
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn geomean_of_values() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        // Non-positive values are skipped.
        assert!((geomean(&[-5.0, 4.0, 1.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[0.0, -1.0]), 0.0);
    }

    #[test]
    fn harmonic_mean_of_values() {
        assert_eq!(harmonic_mean(&[]), 0.0);
        assert!((harmonic_mean(&[1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((harmonic_mean(&[2.0, 6.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn stddev_of_values() {
        assert_eq!(stddev(&[1.0]), 0.0);
        assert!((stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]) - 2.138).abs() < 1e-3);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 4.0);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn empty_summary_is_nan_not_zero() {
        let s = Summary::new();
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.sum(), 0.0);
    }

    /// `Summary::default()` must behave exactly like `Summary::new()`: the
    /// derived impl seeded min/max at 0.0, so `default()` + `record(5.0)`
    /// reported min = 0.0.
    #[test]
    fn default_summary_is_identical_to_new() {
        assert_eq!(Summary::default(), Summary::new());
        let mut d = Summary::default();
        d.record(5.0);
        assert_eq!(d.min(), 5.0);
        assert_eq!(d.max(), 5.0);
        let mut n = Summary::new();
        n.record(5.0);
        assert_eq!(d, n);
    }

    #[test]
    fn fmt_stat_renders_dash_for_non_finite() {
        assert_eq!(fmt_stat(1.25, 2), "1.25");
        assert_eq!(fmt_stat(f64::NAN, 2), "-");
        assert_eq!(fmt_stat(f64::INFINITY, 2), "-");
        assert_eq!(Summary::new().to_string(), "n=0 mean=- min=- max=-");
    }

    #[test]
    fn summary_accumulates() {
        let mut s = Summary::new();
        s.record(1.0);
        s.record(5.0);
        s.record(f64::NAN); // ignored
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.sum(), 6.0);
    }

    #[test]
    fn summary_merge_and_collect() {
        let a: Summary = [1.0, 2.0].into_iter().collect();
        let mut b: Summary = [3.0, 4.0].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.count(), 4);
        assert_eq!(b.mean(), 2.5);
        let empty = Summary::new();
        let mut c = a;
        c.merge(&empty);
        assert_eq!(c.count(), 2);
        let mut d = Summary::new();
        d.extend([10.0, 20.0]);
        assert_eq!(d.max(), 20.0);
    }

    #[test]
    fn summary_display() {
        let s: Summary = [1.0, 3.0].into_iter().collect();
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=2.0000"));
    }
}
