//! Discrete-event simulation substrate for the `gpreempt` workspace.
//!
//! The paper evaluates its proposals on an in-house trace-driven simulator
//! (§4.1). This crate provides the generic machinery that simulator is built
//! from:
//!
//! * a deterministic [`EventQueue`] keyed by [`SimTime`](gpreempt_types::SimTime)
//!   with stable FIFO ordering of simultaneous events,
//! * a seeded random number generator ([`SimRng`]) so every experiment is
//!   reproducible bit-for-bit,
//! * small statistics helpers ([`stats`]) used when aggregating results.
//!
//! # Example
//!
//! ```
//! use gpreempt_sim::EventQueue;
//! use gpreempt_types::SimTime;
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_micros(5), "later");
//! q.schedule(SimTime::from_micros(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t.as_nanos(), ev), (1_000, "sooner"));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod affinity;
pub mod alloc_count;
pub mod queue;
pub mod rng;
pub mod stats;

pub use affinity::pin_current_thread;
pub use alloc_count::{thread_allocations, CountingAlloc};
pub use queue::{EventQueue, QueueKind};
pub use rng::SimRng;
pub use stats::Summary;
