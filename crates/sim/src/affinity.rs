//! Best-effort CPU pinning for sweep worker threads.
//!
//! Long sweeps stream hundreds of scenarios per worker; when the kernel
//! migrates a worker across cores mid-stream, the arena it has been warming
//! ([`SimWorkspace`](../../gpreempt/simulator/struct.SimWorkspace.html)-sized
//! state plus the intern table) is dragged through a cold cache. Pinning
//! each worker to one core removes that migration noise.
//!
//! The pin is **best effort** and deliberately free of any libc dependency
//! (the workspace vendors its few dependencies and adds none): on Linux it
//! issues the raw `sched_setaffinity` syscall via inline assembly, on every
//! other platform it is a no-op that reports failure. Callers must treat a
//! `false` return as "run unpinned", never as an error — affinity is a
//! performance hint, not a correctness requirement (sweep results are
//! bit-identical pinned or not).

/// Pins the calling thread to one CPU (`cpu` is taken modulo the mask
/// width of 1024). Returns whether the kernel accepted the mask; `false`
/// means the thread keeps its previous affinity (non-Linux platforms,
/// restricted sandboxes, or a CPU outside the allowed set).
#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
pub fn pin_current_thread(cpu: usize) -> bool {
    // A fixed 1024-bit mask (the kernel's historical cpu_set_t width);
    // passing a larger-than-needed mask is always accepted.
    let mut mask = [0u64; 16];
    let bit = cpu % (mask.len() * 64);
    mask[bit / 64] = 1u64 << (bit % 64);
    let ret: isize;
    // sched_setaffinity(pid: 0 = calling thread, cpusetsize, mask).
    #[cfg(target_arch = "x86_64")]
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") 203isize => ret, // __NR_sched_setaffinity
            in("rdi") 0usize,
            in("rsi") core::mem::size_of_val(&mask),
            in("rdx") mask.as_ptr(),
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    #[cfg(target_arch = "aarch64")]
    unsafe {
        let out: usize;
        std::arch::asm!(
            "svc 0",
            in("x8") 122usize, // __NR_sched_setaffinity
            inlateout("x0") 0usize => out,
            in("x1") core::mem::size_of_val(&mask),
            in("x2") mask.as_ptr(),
            options(nostack),
        );
        ret = out as isize;
    }
    ret == 0
}

/// No-op fallback: platforms without the raw-syscall path report failure
/// and the caller runs unpinned.
#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
pub fn pin_current_thread(_cpu: usize) -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pinning_is_best_effort_and_never_panics() {
        // On Linux CI this succeeds for CPU 0; elsewhere it reports false.
        // Either way the call must be safe to issue from any thread.
        let _ = pin_current_thread(0);
        // Out-of-range CPUs wrap into the mask width instead of overflowing.
        let _ = pin_current_thread(usize::MAX);
    }

    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn linux_accepts_cpu_zero() {
        // CPU 0 exists on every machine; the raw syscall must succeed.
        assert!(pin_current_thread(0));
        // Restore a permissive mask for the test thread so later tests on
        // this thread are not confined to core 0: pin to each CPU in turn
        // is not possible with this helper, but re-pinning to the current
        // count - 1 proves non-zero indices work too.
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        assert!(pin_current_thread(cpus - 1));
    }
}
