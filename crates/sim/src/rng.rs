//! Deterministic random number generation.
//!
//! All stochastic choices in the simulator (workload composition, per-thread-
//! block execution-time jitter, transfer sizes of synthetic traces) flow
//! through [`SimRng`], a thin wrapper over a seeded [`rand::rngs::StdRng`].
//! Running the same experiment with the same seed always produces the same
//! results.

use gpreempt_types::SimTime;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A seeded, reproducible random number generator.
pub struct SimRng {
    rng: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child generator. Children created with the
    /// same `salt` from generators with the same seed are identical.
    ///
    /// The salt is run through a splitmix64 finalizer before it is combined
    /// with the parent seed, so *every* salt — including 0 — yields a child
    /// stream decorrelated from the parent (a plain `seed ^ salt` would make
    /// `derive(0)` replay the parent's stream verbatim).
    pub fn derive(&self, salt: u64) -> SimRng {
        SimRng::new(self.seed ^ splitmix64(salt))
    }

    /// Uniform integer in `[0, bound)`. Returns 0 when `bound` is 0.
    pub fn next_index(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_unit(&mut self) -> f64 {
        self.rng.gen_range(0.0..1.0)
    }

    /// Uniform `f64` in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn next_range(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            lo
        } else {
            self.rng.gen_range(lo..hi)
        }
    }

    /// A duration jittered uniformly within `±fraction` of `mean`
    /// (e.g. `fraction = 0.2` gives a value in `[0.8, 1.2] * mean`).
    ///
    /// A non-finite or negative `fraction` is treated as zero jitter.
    pub fn jittered(&mut self, mean: SimTime, fraction: f64) -> SimTime {
        if !(fraction.is_finite()) || fraction <= 0.0 || mean.is_zero() {
            return mean;
        }
        let f = fraction.min(0.99);
        let factor = self.next_range(1.0 - f, 1.0 + f);
        mean.scale(factor)
    }

    /// Picks one element of the slice uniformly at random.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        items.choose(&mut self.rng)
    }

    /// Shuffles the slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.rng);
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.rng.gen_bool(p)
        }
    }
}

/// The splitmix64 finalizer: a bijective avalanche over `u64` that spreads
/// low-entropy salts (0, 1, 2, ...) across the whole seed space.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl fmt::Debug for SimRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimRng").field("seed", &self.seed).finish()
    }
}

impl Clone for SimRng {
    /// Cloning re-seeds from the original seed, so a clone replays the
    /// original stream from the start.
    fn clone(&self) -> Self {
        SimRng::new(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_index(1000), b.next_index(1000));
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<usize> = (0..32).map(|_| a.next_index(1_000_000)).collect();
        let vb: Vec<usize> = (0..32).map(|_| b.next_index(1_000_000)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn derive_is_deterministic() {
        let a = SimRng::new(7).derive(3);
        let b = SimRng::new(7).derive(3);
        let c = SimRng::new(7).derive(4);
        assert_eq!(a.seed(), b.seed());
        assert_ne!(a.seed(), c.seed());
    }

    #[test]
    fn derive_zero_salt_decorrelates_from_parent() {
        // Regression: `derive(0)` used to be `seed ^ 0 == seed`, so the
        // child replayed the parent's stream verbatim.
        let parent = SimRng::new(2014);
        let mut child = parent.derive(0);
        assert_ne!(child.seed(), parent.seed());
        let mut parent = parent;
        let parent_stream: Vec<usize> = (0..32).map(|_| parent.next_index(1_000_000)).collect();
        let child_stream: Vec<usize> = (0..32).map(|_| child.next_index(1_000_000)).collect();
        assert_ne!(parent_stream, child_stream);
    }

    #[test]
    fn derive_small_salts_yield_distinct_children() {
        // Scenario ids are consecutive small integers; each must get its
        // own stream.
        let parent = SimRng::new(42);
        let seeds: Vec<u64> = (0..64).map(|salt| parent.derive(salt).seed()).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let mut rng = SimRng::new(9);
        let mean = SimTime::from_micros(100);
        for _ in 0..1000 {
            let t = rng.jittered(mean, 0.2);
            assert!(t.as_nanos() >= 80_000 && t.as_nanos() <= 120_000, "{t}");
        }
    }

    #[test]
    fn jitter_degenerate_inputs() {
        let mut rng = SimRng::new(9);
        let mean = SimTime::from_micros(5);
        assert_eq!(rng.jittered(mean, 0.0), mean);
        assert_eq!(rng.jittered(mean, -1.0), mean);
        assert_eq!(rng.jittered(mean, f64::NAN), mean);
        assert_eq!(rng.jittered(SimTime::ZERO, 0.5), SimTime::ZERO);
    }

    #[test]
    fn next_index_zero_bound() {
        let mut rng = SimRng::new(1);
        assert_eq!(rng.next_index(0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(1);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SimRng::new(3);
        let items = [1, 2, 3, 4];
        assert!(items.contains(rng.choose(&items).unwrap()));
        let empty: [i32; 0] = [];
        assert!(rng.choose(&empty).is_none());
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn clone_replays_stream() {
        let mut a = SimRng::new(11);
        let _ = a.next_unit();
        let mut b = a.clone();
        let mut fresh = SimRng::new(11);
        assert_eq!(b.next_index(100), fresh.next_index(100));
    }
}
