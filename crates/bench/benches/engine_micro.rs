//! Microbenchmarks of the execution-engine model itself: thread-block issue
//! throughput, preemption operations and the scheduling-framework state.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use gpreempt_gpu::{EngineEvent, EngineParams, ExecutionEngine, KernelLaunch, PreemptionMechanism};
use gpreempt_sim::{EventQueue, SimRng};
use gpreempt_trace::KernelSpec;
use gpreempt_types::{
    CommandId, GpuConfig, KernelFootprint, KernelLaunchId, PreemptionConfig, Priority, ProcessId,
    SimTime, SmId,
};
use std::hint::black_box;

fn launch(blocks: u32) -> KernelLaunch {
    KernelLaunch::new(
        KernelLaunchId::new(0),
        CommandId::new(0),
        ProcessId::new(0),
        Priority::NORMAL,
        KernelSpec::new(
            "micro",
            KernelFootprint::new(8_192, 0, 256),
            blocks,
            SimTime::from_micros(10),
        ),
    )
}

/// Runs one kernel of `blocks` thread blocks to completion with every SM
/// assigned; returns the number of processed events. Drives the engine the
/// way the simulator does: reused scratch buffers, zero allocation per
/// event in steady state.
fn run_single_kernel(mechanism: PreemptionMechanism, blocks: u32) -> u64 {
    let mut engine = ExecutionEngine::new(
        GpuConfig::default(),
        PreemptionConfig {
            selection: mechanism.into(),
            ..Default::default()
        },
        EngineParams::default(),
        SimRng::new(7),
    );
    let mut queue: EventQueue<EngineEvent> = EventQueue::new();
    let mut scheduled = Vec::new();
    let mut hooks = Vec::new();
    let mut completions = Vec::new();
    engine.submit(launch(blocks), SimTime::ZERO);
    let ksr = engine.active_kernels().next().unwrap();
    for sm in engine.sm_ids() {
        engine.assign_sm(SimTime::ZERO, sm, ksr);
    }
    loop {
        engine.drain_scheduled_into(&mut scheduled);
        for (t, ev) in scheduled.drain(..) {
            queue.schedule(t, ev);
        }
        hooks.clear();
        engine.drain_hooks_into(&mut hooks);
        completions.clear();
        engine.drain_completions_into(&mut completions);
        let Some((t, ev)) = queue.pop() else { break };
        engine.handle(t, ev);
    }
    queue.processed()
}

fn bench_block_issue_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/block_throughput");
    for blocks in [1_000u32, 10_000, 50_000] {
        group.throughput(criterion::Throughput::Elements(blocks as u64));
        group.bench_function(format!("{blocks}_blocks"), |b| {
            b.iter(|| run_single_kernel(PreemptionMechanism::ContextSwitch, black_box(blocks)))
        });
    }
    group.finish();
}

fn bench_preemption_operation(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/preempt_sm");
    for mechanism in PreemptionMechanism::all() {
        group.bench_function(mechanism.label(), |b| {
            b.iter_batched(
                || {
                    // A running engine with a second kernel waiting.
                    let mut engine = ExecutionEngine::new(
                        GpuConfig::default(),
                        PreemptionConfig {
                            selection: mechanism.into(),
                            ..Default::default()
                        },
                        EngineParams::default(),
                        SimRng::new(3),
                    );
                    engine.submit(launch(10_000), SimTime::ZERO);
                    let mut second = launch(100);
                    second.id = KernelLaunchId::new(1);
                    second.command = CommandId::new(1);
                    second.process = ProcessId::new(1);
                    engine.submit(second, SimTime::ZERO);
                    let first = engine.active_kernels().next().unwrap();
                    for sm in engine.sm_ids() {
                        engine.assign_sm(SimTime::ZERO, sm, first);
                    }
                    // Deliver the setup events so blocks are resident.
                    let mut scheduled = Vec::new();
                    engine.drain_scheduled_into(&mut scheduled);
                    for (t, ev) in scheduled.drain(..) {
                        engine.handle(t, ev);
                    }
                    engine.drain_scheduled_into(&mut scheduled);
                    engine
                },
                |mut engine| {
                    let target = engine.active_kernels().nth(1).unwrap();
                    for sm in 0..13 {
                        engine.preempt_sm(SimTime::from_micros(5), SmId::new(sm), target);
                    }
                    black_box(engine.stats().preemptions)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_framework_queries(c: &mut Criterion) {
    let mut engine = ExecutionEngine::new(
        GpuConfig::default(),
        PreemptionConfig {
            selection: PreemptionMechanism::ContextSwitch.into(),
            ..Default::default()
        },
        EngineParams::default(),
        SimRng::new(3),
    );
    for i in 0..13u64 {
        let mut l = launch(200);
        l.id = KernelLaunchId::new(i);
        l.command = CommandId::new(i);
        l.process = ProcessId::new(i as u32);
        engine.submit(l, SimTime::ZERO);
    }
    let kernels: Vec<_> = engine.active_kernels().collect();
    let idle: Vec<_> = engine.idle_sms().collect();
    for (i, sm) in idle.into_iter().enumerate() {
        engine.assign_sm(SimTime::ZERO, sm, kernels[i % kernels.len()]);
    }
    c.bench_function("engine/smst_ksrt_scan", |b| {
        b.iter(|| {
            let idle = engine.idle_sms().count();
            let needy = engine
                .active_kernels()
                .filter(|&k| {
                    engine
                        .kernel(k)
                        .map(|s| s.has_blocks_to_issue())
                        .unwrap_or(false)
                })
                .count();
            black_box((idle, needy))
        })
    });
}

criterion_group!(
    benches,
    bench_block_issue_throughput,
    bench_preemption_operation,
    bench_framework_queries
);
criterion_main!(benches);
