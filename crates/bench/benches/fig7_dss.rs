//! Regenerates Figures 7a, 7b and 7c: the effect of equal-share Dynamic
//! Spatial Sharing on turnaround time (per application class), system
//! fairness and system throughput, relative to the FCFS baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use gpreempt::experiments::SpatialResults;
use gpreempt::{PolicyKind, SimulatorConfig};
use gpreempt_bench::{run_representative, runner_from_env, scale_from_env};
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let config = SimulatorConfig::default();
    let scale = scale_from_env();
    let results =
        SpatialResults::run_with(&config, &scale, &runner_from_env()).expect("figure 7 experiment");
    println!("{}", results.render_fig7a().render());
    println!("{}", results.render_fig7b().render());
    println!("{}", results.render_fig7c().render());

    // Timed unit: one small workload under DSS with context switching.
    c.bench_function("fig7/dss_context_switch_representative", |b| {
        b.iter(|| run_representative(black_box(&config), PolicyKind::Dss))
    });
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
