//! Microbenchmark of the adaptive mechanism-selection hot path: building a
//! [`PreemptionEstimate`] from the online remaining-time estimator and
//! picking a mechanism. This code runs inside every `preempt_sm` under
//! `MechanismSelection::Adaptive`, so it must stay cheap relative to the
//! rest of the engine's event handling.

use criterion::{criterion_group, criterion_main, Criterion};
use gpreempt_gpu::{ContextSwitchCost, PreemptionEstimate, RemainingTimeEstimator};
use gpreempt_types::{GpuConfig, KernelFootprint, PreemptionConfig, SimTime};
use std::hint::black_box;

/// A warmed-up estimator: each KSRT slot seeded and fed observations, as it
/// would be mid-run.
fn warmed_estimator(slots: usize) -> RemainingTimeEstimator {
    let mut est = RemainingTimeEstimator::new(slots);
    for slot in 0..slots {
        est.reset_slot(slot, SimTime::from_micros(100));
        for i in 0..64u64 {
            est.observe(slot, SimTime::from_micros(80 + (i * 7) % 40));
        }
    }
    est
}

fn bench_estimate_and_select(c: &mut Criterion) {
    let gpu = GpuConfig::default();
    let cfg = PreemptionConfig::default();
    let cost = ContextSwitchCost::new(&gpu, &cfg);
    let footprint = KernelFootprint::new(8_192, 0, 256);
    let estimator = warmed_estimator(13);
    // A full SM: 16 resident blocks at varying progress.
    let elapsed: Vec<SimTime> = (0..16u64).map(|i| SimTime::from_micros(i * 6)).collect();

    let mut group = c.benchmark_group("engine/mechanism_select");
    group.bench_function("estimate_16_blocks", |b| {
        b.iter(|| {
            PreemptionEstimate::for_resident_blocks(
                black_box(&estimator),
                black_box(3),
                black_box(&elapsed),
                &cost,
                &footprint,
            )
        })
    });
    group.bench_function("estimate_and_select", |b| {
        b.iter(|| {
            let estimate = PreemptionEstimate::for_resident_blocks(
                black_box(&estimator),
                black_box(3),
                black_box(&elapsed),
                &cost,
                &footprint,
            );
            (
                estimate.select(None),
                estimate.select(Some(SimTime::from_micros(50))),
            )
        })
    });
    group.bench_function("observe_update", |b| {
        let mut est = warmed_estimator(13);
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1);
            est.observe((i % 13) as usize, SimTime::from_micros(60 + i % 50));
            black_box(est.expected_duration((i % 13) as usize))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_estimate_and_select);
criterion_main!(benches);
