//! Times `SweepRunner::run_fold` itself — the streaming sweep pipeline —
//! at several worker counts, so the parallel speedup curve is tracked by
//! `cargo bench` (the ROADMAP's criterion-integration item).
//!
//! Two modes:
//!
//! * **criterion** (default): one benchmark per worker count over a fixed
//!   quick-scale plan, with `Throughput::Elements` set to the plan's total
//!   simulation events, so the report reads in events/sec.
//! * **smoke** (`GPREEMPT_SWEEP_SMOKE=1`): runs the plan sequentially in
//!   **rebuild** mode (fresh `SimWorkspace` per scenario, the pre-arena
//!   behaviour) and **reuse** mode (one arena for the whole stream), plus
//!   `--jobs 2` reuse, a `sharded_3` leg (the population as three
//!   sequential `id % 3` stripe passes — the single-machine cost of
//!   `--shard`) and a core-pinned `jobs2_affinity` leg, best of three
//!   each. Writes a machine-readable `BENCH_sweep.json` artifact —
//!   events/sec, scenarios/sec, wall clock, peak runs-resident bound,
//!   `speedup_affinity` — to `GPREEMPT_BENCH_JSON` (default
//!   `BENCH_sweep.json`), and **exits non-zero if reuse is slower than
//!   rebuild, or jobs=2 slower than jobs=1**. The sharding and affinity
//!   legs are informational, never gated. CI runs this mode.

use criterion::{criterion_group, Criterion, Throughput};
use gpreempt::experiments::ExperimentScale;
use gpreempt::json::Value;
use gpreempt::sweep::{Scenario, SweepPlan, SweepRunner};
use gpreempt::{PolicyKind, SimulatorConfig};
use gpreempt_sim::QueueKind;
use std::time::{Duration, Instant};

/// The timed unit: a quick-scale random population under FCFS and DSS —
/// the same shape as the spatial experiment's main phase.
fn plan() -> SweepPlan {
    let config = SimulatorConfig::default();
    let scale = ExperimentScale::quick();
    let mut generator = scale.generator(&config);
    let mut plan = SweepPlan::new(config).with_seed(scale.seed);
    for &size in &scale.workload_sizes {
        for workload in generator.random_population(size, scale.random_workloads) {
            let workload = scale.finalize(workload);
            for policy in [PolicyKind::Fcfs, PolicyKind::Dss] {
                plan.push(Scenario::new(
                    "throughput",
                    policy.label(),
                    workload.clone(),
                    policy,
                ));
            }
        }
    }
    plan
}

/// Streams the plan once, returning (wall clock, total simulation events).
fn run_once(plan: &SweepPlan, jobs: usize, reuse: bool) -> (Duration, u64) {
    run_once_on(plan, jobs, reuse, None)
}

/// [`run_once`] with an explicit event-queue backend override.
fn run_once_on(
    plan: &SweepPlan,
    jobs: usize,
    reuse: bool,
    queue: Option<QueueKind>,
) -> (Duration, u64) {
    let mut runner = SweepRunner::new(jobs).with_reuse(reuse);
    if let Some(kind) = queue {
        runner = runner.with_queue(kind);
    }
    let started = Instant::now();
    let folded = runner
        .run_fold(plan, &|_, run| Ok(run.events_processed()))
        .expect("sweep failed");
    (started.elapsed(), folded.events_total())
}

/// One full sweep split into `n` sequential stripe passes (`id % n == k`),
/// the single-machine equivalent of `run_sweep --shard k/n` × n: measures
/// what striping itself costs relative to one unsharded pass.
fn run_sharded(plan: &SweepPlan, n: usize) -> Duration {
    let runner = SweepRunner::new(1).with_reuse(true);
    let started = Instant::now();
    for k in 0..n {
        let ids: Vec<usize> = (0..plan.len()).filter(|id| id % n == k).collect();
        runner
            .run_fold_subset(plan, &ids, &|_, run| Ok(run.events_processed()))
            .expect("sharded sweep failed");
    }
    started.elapsed()
}

/// `--jobs 2` with each worker pinned to a core.
fn run_once_pinned(plan: &SweepPlan) -> Duration {
    let runner = SweepRunner::new(2).with_reuse(true).with_affinity(true);
    let started = Instant::now();
    runner
        .run_fold(plan, &|_, run| Ok(run.events_processed()))
        .expect("pinned sweep failed");
    started.elapsed()
}

fn bench_sweep_throughput(c: &mut Criterion) {
    let plan = plan();
    let (_, events) = run_once(&plan, 1, true); // warm + count events
    let mut group = c.benchmark_group("sweep/run_fold");
    group.throughput(Throughput::Elements(events));
    group.bench_function("jobs1-rebuild", |b| b.iter(|| run_once(&plan, 1, false)));
    for jobs in [1usize, 2, 4] {
        group.bench_function(format!("jobs{jobs}"), |b| {
            b.iter(|| run_once(&plan, jobs, true))
        });
    }
    // The event-core comparison: the same sequential sweep on the heap
    // baseline vs the calendar queue.
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        group.bench_function(format!("queue-{}", kind.label()), |b| {
            b.iter(|| run_once_on(&plan, 1, true, Some(kind)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sweep_throughput);

/// Best-of-`n` streaming runs at one worker count.
fn best_of(plan: &SweepPlan, jobs: usize, reuse: bool, n: usize) -> (Duration, u64) {
    best_of_on(plan, jobs, reuse, None, n)
}

/// [`best_of`] with an explicit event-queue backend override.
fn best_of_on(
    plan: &SweepPlan,
    jobs: usize,
    reuse: bool,
    queue: Option<QueueKind>,
    n: usize,
) -> (Duration, u64) {
    let mut best = Duration::MAX;
    let mut events = 0;
    for _ in 0..n {
        let (wall, ev) = run_once_on(plan, jobs, reuse, queue);
        if wall < best {
            best = wall;
        }
        events = ev;
    }
    (best, events)
}

fn mode_value(jobs: usize, wall: Duration, events: u64, scenarios: usize) -> Value {
    let secs = wall.as_secs_f64();
    Value::object([
        ("jobs", Value::from(jobs as u64)),
        ("wall_ms", Value::from(secs * 1e3)),
        ("events", Value::from(events)),
        (
            "events_per_sec",
            Value::from(if secs > 0.0 {
                events as f64 / secs
            } else {
                0.0
            }),
        ),
        (
            "scenarios_per_sec",
            Value::from(if secs > 0.0 {
                scenarios as f64 / secs
            } else {
                0.0
            }),
        ),
        // Streaming bound: at most one SimulationRun body per worker is
        // resident at any moment.
        ("peak_runs_resident", Value::from(jobs as u64)),
    ])
}

fn smoke() {
    let plan = plan();
    let scenarios = plan.len();
    // Rebuild: fresh workspace per scenario — the pre-arena baseline.
    let (wall_rebuild, events) = best_of(&plan, 1, false, 3);
    // Reuse: one arena services the worker's whole scenario stream.
    let (wall1, _) = best_of(&plan, 1, true, 3);
    let (wall2, _) = best_of(&plan, 2, true, 3);
    // Event-queue backends head to head, sequential reuse mode: the heap
    // baseline vs the calendar queue the simulator now defaults to.
    let (wall_heap, _) = best_of_on(&plan, 1, true, Some(QueueKind::Heap), 3);
    let (wall_calendar, _) = best_of_on(&plan, 1, true, Some(QueueKind::Calendar), 3);
    // Sharding overhead: the same population as three sequential stripe
    // passes. Informational — stripes exist for resumability and
    // multi-node fan-out, not single-pass speed.
    let wall_sharded = {
        let mut best = Duration::MAX;
        for _ in 0..3 {
            best = best.min(run_sharded(&plan, 3));
        }
        best
    };
    // Worker pinning: jobs=2 with and without core affinity. Recorded, not
    // gated — pinning wins on busy multi-socket boxes and is a wash on
    // idle small ones.
    let wall_pinned = {
        let mut best = Duration::MAX;
        for _ in 0..3 {
            best = best.min(run_once_pinned(&plan));
        }
        best
    };
    let report = Value::object([
        ("bench", Value::from("sweep_throughput")),
        ("scale", Value::from("quick")),
        ("scenarios", Value::from(scenarios)),
        ("rebuild", mode_value(1, wall_rebuild, events, scenarios)),
        ("reuse", mode_value(1, wall1, events, scenarios)),
        ("jobs1", mode_value(1, wall1, events, scenarios)),
        ("jobs2", mode_value(2, wall2, events, scenarios)),
        ("queue_heap", mode_value(1, wall_heap, events, scenarios)),
        (
            "queue_calendar",
            mode_value(1, wall_calendar, events, scenarios),
        ),
        ("sharded_3", mode_value(1, wall_sharded, events, scenarios)),
        (
            "jobs2_affinity",
            mode_value(2, wall_pinned, events, scenarios),
        ),
        (
            "speedup_reuse",
            Value::from(wall_rebuild.as_secs_f64() / wall1.as_secs_f64().max(1e-9)),
        ),
        (
            "speedup_jobs2",
            Value::from(wall1.as_secs_f64() / wall2.as_secs_f64().max(1e-9)),
        ),
        (
            "speedup_calendar",
            Value::from(wall_heap.as_secs_f64() / wall_calendar.as_secs_f64().max(1e-9)),
        ),
        (
            "speedup_affinity",
            Value::from(wall2.as_secs_f64() / wall_pinned.as_secs_f64().max(1e-9)),
        ),
    ]);
    let path = std::env::var("GPREEMPT_BENCH_JSON").unwrap_or_else(|_| "BENCH_sweep.json".into());
    std::fs::write(&path, report.to_json()).expect("write bench artifact");
    println!(
        "sweep_throughput smoke: {scenarios} scenarios, rebuild {:.1?} vs reuse {:.1?} \
         ({:.1} vs {:.1} scenarios/s), jobs2 {:.1?} (pinned {:.1?}), heap {:.1?} vs \
         calendar {:.1?}, 3-stripe {:.1?} -> {path}",
        wall_rebuild,
        wall1,
        scenarios as f64 / wall_rebuild.as_secs_f64().max(1e-9),
        scenarios as f64 / wall1.as_secs_f64().max(1e-9),
        wall2,
        wall_pinned,
        wall_heap,
        wall_calendar,
        wall_sharded,
    );
    // "Slower" with a noise margin: shared CI runners jitter by a few
    // percent, and these gates exist to catch structural regressions, not
    // scheduler weather.
    const TOLERANCE: f64 = 1.15;
    if wall1.as_secs_f64() > wall_rebuild.as_secs_f64() * TOLERANCE {
        eprintln!(
            "FAIL: workspace reuse ({wall1:.1?}) is slower than per-scenario \
             rebuild ({wall_rebuild:.1?})"
        );
        std::process::exit(1);
    }
    if wall_calendar.as_secs_f64() > wall_heap.as_secs_f64() * TOLERANCE {
        eprintln!(
            "FAIL: calendar queue ({wall_calendar:.1?}) is slower than the heap \
             baseline ({wall_heap:.1?})"
        );
        std::process::exit(1);
    }
    let cpus = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if wall2.as_secs_f64() > wall1.as_secs_f64() * TOLERANCE {
        if cpus < 2 {
            // A second worker cannot win on a single hardware thread; the
            // gate only means something on multi-core machines (CI is).
            eprintln!(
                "WARN: jobs=2 ({wall2:.1?}) slower than jobs=1 ({wall1:.1?}) on a \
                 single-CPU machine; not failing"
            );
            return;
        }
        eprintln!("FAIL: jobs=2 ({wall2:.1?}) is slower than jobs=1 ({wall1:.1?})");
        std::process::exit(1);
    }
}

fn main() {
    if std::env::var("GPREEMPT_SWEEP_SMOKE").is_ok() {
        smoke();
    } else {
        benches();
    }
}
