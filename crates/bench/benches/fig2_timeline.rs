//! Regenerates the Figure 2 timeline (soft real-time kernel under FCFS /
//! NPQ / PPQ) and times the scenario simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use gpreempt::experiments::Fig2Results;
use gpreempt::SimulatorConfig;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let config = SimulatorConfig::default();
    let results = Fig2Results::run(&config).expect("figure 2 scenario");
    println!("{}", results.render().render());

    c.bench_function("fig2/three_scheduler_timeline", |b| {
        b.iter(|| Fig2Results::run(black_box(&config)).unwrap())
    });
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
