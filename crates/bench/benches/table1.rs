//! Regenerates Table 1 (per-kernel statistics) and times the cost-model
//! computations behind its derived columns.

use criterion::{criterion_group, criterion_main, Criterion};
use gpreempt::experiments::Table1;
use gpreempt::SimulatorConfig;
use gpreempt_trace::parboil::TABLE1;
use gpreempt_types::GpuConfig;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let config = SimulatorConfig::default();
    let table = Table1::generate(&config);
    println!("{}", table.render().render());
    assert!(table.blocks_per_sm_mismatches().is_empty());

    c.bench_function("table1/generate", |b| {
        b.iter(|| Table1::generate(black_box(&config)))
    });

    let gpu = GpuConfig::default();
    c.bench_function("table1/context_save_cost_model", |b| {
        b.iter(|| {
            TABLE1
                .iter()
                .map(|row| {
                    let fp = row.footprint();
                    let blocks = fp.max_blocks_per_sm(black_box(&gpu));
                    fp.context_save_time(&gpu, blocks).as_nanos()
                })
                .sum::<u64>()
        })
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
