//! The real-time scheduling sweep: regenerates the deadline-miss-rate
//! comparison (PPQ vs GCAPS vs EDF across latency targets and utilization
//! levels), then times one representative deadline workload under GCAPS as
//! the Criterion unit.

use criterion::{criterion_group, criterion_main, Criterion};
use gpreempt::experiments::RealtimeResults;
use gpreempt::{PolicyKind, Simulator, SimulatorConfig};
use gpreempt_bench::{runner_from_env, scale_from_env};
use gpreempt_trace::{parboil, ProcessSpec, Workload};
use gpreempt_types::RtSpec;
use std::hint::black_box;

/// A small deadline workload: two short applications with implicit
/// deadlines loose enough to be met under fair sharing.
fn deadline_workload(config: &SimulatorConfig) -> Workload {
    let gpu = &config.machine.gpu;
    let sim = Simulator::new(config.clone());
    let spmv = parboil::benchmark("spmv", gpu).expect("spmv");
    let sgemm = parboil::benchmark("sgemm", gpu).expect("sgemm");
    let processes = [spmv, sgemm]
        .into_iter()
        .map(|b| {
            let iso = sim.isolated_time(&b).expect("isolated time");
            ProcessSpec::new(b).with_rt(RtSpec::implicit(iso.scale(4.0)))
        })
        .collect();
    Workload::new("rt-representative", processes).with_min_completions(1)
}

fn bench_realtime(c: &mut Criterion) {
    let config = SimulatorConfig::default();
    let scale = scale_from_env();
    let runner = runner_from_env();

    let results = RealtimeResults::run_with(&config, &scale, &runner).expect("realtime sweep runs");
    println!("{}", results.render().render());
    println!("[{}]", results.timing().summary());
    assert!(
        results.gcaps_beats_ppq_somewhere(),
        "GCAPS should beat PPQ's miss rate in at least one swept scenario"
    );

    let workload = deadline_workload(&config);
    let mut group = c.benchmark_group("experiments/realtime");
    for policy in [PolicyKind::Gcaps, PolicyKind::Edf] {
        group.bench_function(format!("deadline_pair_{}", policy.label()), |b| {
            let sim = Simulator::new(config.clone());
            b.iter(|| {
                let run = sim.run(black_box(&workload), policy).expect("run");
                black_box(run.rt_metrics(&workload).miss_rate())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_realtime);
criterion_main!(benches);
