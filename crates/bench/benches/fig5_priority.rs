//! Regenerates Figure 5: turnaround-time improvement of the high-priority
//! process under NPQ and PPQ (both mechanisms) over its non-prioritised
//! FCFS execution, grouped by kernel-duration class and workload size.

use criterion::{criterion_group, criterion_main, Criterion};
use gpreempt::experiments::PriorityResults;
use gpreempt::{PolicyKind, SimulatorConfig};
use gpreempt_bench::{run_representative, runner_from_env, scale_from_env};
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let config = SimulatorConfig::default();
    let scale = scale_from_env();
    let results = PriorityResults::run_with(&config, &scale, &runner_from_env())
        .expect("figure 5 experiment");
    println!("{}", results.render_fig5().render());
    println!("{}", results.timing().summary());

    // Timed unit: one small two-process workload under the preemptive
    // priority scheduler (the configuration Figure 5 is about).
    c.bench_function("fig5/ppq_context_switch_representative", |b| {
        b.iter(|| run_representative(black_box(&config), PolicyKind::PpqExclusive))
    });
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
