//! Regenerates Figure 8: the distribution of average normalized turnaround
//! time (ANTT) across all simulated workloads, for FCFS and DSS with both
//! preemption mechanisms.

use criterion::{criterion_group, criterion_main, Criterion};
use gpreempt::experiments::SpatialResults;
use gpreempt::{PolicyKind, SimulatorConfig};
use gpreempt_bench::{run_representative, runner_from_env, scale_from_env};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let config = SimulatorConfig::default();
    let scale = scale_from_env();
    let results =
        SpatialResults::run_with(&config, &scale, &runner_from_env()).expect("figure 8 experiment");
    println!("{}", results.render_fig8().render());

    // Timed unit: the FCFS baseline every Figure 8 curve is compared to.
    c.bench_function("fig8/fcfs_representative", |b| {
        b.iter(|| run_representative(black_box(&config), PolicyKind::Fcfs))
    });
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
