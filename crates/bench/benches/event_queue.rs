//! Microbenchmarks of the event-queue backends themselves: schedule/pop
//! churn at steady pending populations, heap vs calendar, clustered vs
//! uniform timestamps.
//!
//! The pending population is the backends' separating variable: the binary
//! heap pays `O(log n)` per operation while the calendar queue pays `O(1)`
//! amortised, so the gap should widen from 1k to 100k pending. The
//! timestamp distribution separates the calendar's regimes: clustered
//! times pile many events into few buckets (batched same-time delivery's
//! home turf), uniform times spread the wheel and exercise cursor
//! advancement and resize.
//!
//! The clustered/100k cell is the historical calendar-queue degradation:
//! thousands of events share a handful of timestamps, and an unsorted
//! bucket would make each pop scan its whole same-time cohort. The sorted
//! bucket chains dodge it — cohort members carry strictly increasing
//! sequence numbers, so each lands on its bucket's tail in O(1) and pop
//! takes the head — but this cell stays in the grid so a regression back
//! toward the cliff is visible.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpreempt_sim::{EventQueue, QueueKind};
use gpreempt_types::SimTime;
use std::hint::black_box;

/// Deterministic xorshift64* stream — cheap enough that time generation is
/// noise next to the queue operation under test.
struct Times {
    state: u64,
    clustered: bool,
}

impl Times {
    fn new(seed: u64, clustered: bool) -> Self {
        Times {
            state: seed | 1,
            clustered,
        }
    }

    /// The next schedule offset from the queue's current clock.
    fn next_offset(&mut self) -> SimTime {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        let raw = self.state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        let nanos = if self.clustered {
            // A handful of distinct timestamps per horizon: many events
            // share a bucket (and a timestamp), as quantum-tick storms do.
            (raw % 16) * 4_096
        } else {
            // Spread across ~1ms: events land in distinct buckets and the
            // calendar cursor sweeps, wraps and resizes.
            raw % 1_000_000
        };
        SimTime::from_nanos(nanos)
    }
}

/// Pre-fills a queue to `pending` events, then measures steady-state churn:
/// each iteration schedules one event and pops one, holding the population
/// constant — the dominant pattern inside `Simulator::run_inner`.
fn bench_churn(c: &mut Criterion) {
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        let mut group = c.benchmark_group(format!("event_queue_churn/{}", kind.label()));
        group.throughput(Throughput::Elements(1));
        for pending in [1_000usize, 100_000] {
            for clustered in [true, false] {
                let dist = if clustered { "clustered" } else { "uniform" };
                let mut queue: EventQueue<u64> = EventQueue::with_kind_and_capacity(kind, pending);
                let mut times = Times::new(0x9e37_79b9 ^ pending as u64, clustered);
                for i in 0..pending {
                    let offset = times.next_offset();
                    queue.schedule_after(offset, i as u64);
                }
                group.bench_function(format!("{pending}/{dist}"), |b| {
                    b.iter(|| {
                        let offset = times.next_offset();
                        queue.schedule_after(offset, 0);
                        black_box(queue.pop());
                    })
                });
            }
        }
        group.finish();
    }
}

/// Fill-then-drain: schedules `pending` events into an empty queue, then
/// pops them all — the open-loop arrival burst shape. Timed per event.
fn bench_fill_drain(c: &mut Criterion) {
    for kind in [QueueKind::Heap, QueueKind::Calendar] {
        let mut group = c.benchmark_group(format!("event_queue_fill_drain/{}", kind.label()));
        for pending in [1_000usize, 100_000] {
            group.throughput(Throughput::Elements(pending as u64));
            let mut queue: EventQueue<u64> = EventQueue::with_kind_and_capacity(kind, pending);
            let mut times = Times::new(0xdead_beef, false);
            group.bench_function(format!("{pending}"), |b| {
                b.iter(|| {
                    queue.reset();
                    for i in 0..pending {
                        let offset = times.next_offset();
                        queue.schedule_after(offset, i as u64);
                    }
                    while let Some(popped) = queue.pop() {
                        black_box(popped);
                    }
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_churn, bench_fill_drain);
criterion_main!(benches);
