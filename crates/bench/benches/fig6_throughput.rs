//! Regenerates Figures 6a and 6b: system-throughput degradation of the
//! preemptive priority scheduler (both mechanisms) relative to NPQ, with
//! exclusive and shared access to the execution engine.

use criterion::{criterion_group, criterion_main, Criterion};
use gpreempt::experiments::PriorityResults;
use gpreempt::{PolicyKind, SimulatorConfig};
use gpreempt_bench::{run_representative, runner_from_env, scale_from_env};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let config = SimulatorConfig::default();
    let scale = scale_from_env();
    let results = PriorityResults::run_with(&config, &scale, &runner_from_env())
        .expect("figure 6 experiment");
    println!("{}", results.render_fig6(false).render());
    println!("{}", results.render_fig6(true).render());

    // Timed unit: the shared-access PPQ configuration of Figure 6b.
    c.bench_function("fig6/ppq_shared_representative", |b| {
        b.iter(|| run_representative(black_box(&config), PolicyKind::PpqShared))
    });
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
