//! Ablation benches for the design choices called out in DESIGN.md:
//! the pipeline-drain delay of the context-switch trap, per-block execution
//! time jitter, and the SM setup latency.
//!
//! Each ablation prints how the representative workload's metrics move as
//! the parameter changes, then times one configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use gpreempt::report::TextTable;
use gpreempt::{PolicyKind, Simulator, SimulatorConfig};
use gpreempt_bench::representative_workload;
use gpreempt_types::SimTime;
use std::hint::black_box;

fn run_with(config: &SimulatorConfig) -> (f64, u64) {
    let sim = Simulator::new(config.clone());
    let workload = representative_workload(config);
    let isolated = sim.isolated_times(&workload).expect("isolated");
    let run = sim.run(&workload, PolicyKind::Dss).expect("run");
    let metrics = run.metrics(&isolated).expect("metrics");
    (metrics.antt(), run.engine_stats().preemptions)
}

fn ablate_pipeline_drain(c: &mut Criterion) {
    let mut table = TextTable::new(vec![
        "pipeline drain (us)".into(),
        "ANTT".into(),
        "preemptions".into(),
    ])
    .with_title("Ablation: context-switch pipeline-drain delay (DSS, representative workload)");
    for drain_us in [0u64, 1, 2, 5, 10] {
        let mut config = SimulatorConfig::default();
        config.machine.preemption.pipeline_drain = SimTime::from_micros(drain_us);
        let (antt, preemptions) = run_with(&config);
        table.add_row(vec![
            drain_us.to_string(),
            format!("{antt:.3}"),
            preemptions.to_string(),
        ]);
    }
    println!("{}", table.render());

    let config = SimulatorConfig::default();
    c.bench_function("ablation/pipeline_drain_default", |b| {
        b.iter(|| run_with(black_box(&config)))
    });
}

fn ablate_block_jitter(c: &mut Criterion) {
    let mut table = TextTable::new(vec!["jitter".into(), "ANTT".into(), "preemptions".into()])
        .with_title(
            "Ablation: per-thread-block execution-time jitter (DSS, representative workload)",
        );
    for jitter in [0.0f64, 0.05, 0.1, 0.2, 0.4] {
        let mut config = SimulatorConfig::default();
        config.engine.block_time_jitter = jitter;
        let (antt, preemptions) = run_with(&config);
        table.add_row(vec![
            format!("{jitter:.2}"),
            format!("{antt:.3}"),
            preemptions.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut config = SimulatorConfig::default();
    config.engine.block_time_jitter = 0.2;
    c.bench_function("ablation/jitter_0_2", |b| {
        b.iter(|| run_with(black_box(&config)))
    });
}

fn ablate_sm_setup_time(c: &mut Criterion) {
    let mut table = TextTable::new(vec![
        "SM setup (us)".into(),
        "ANTT".into(),
        "preemptions".into(),
    ])
    .with_title("Ablation: SM driver setup latency (DSS, representative workload)");
    for setup_us in [0u64, 1, 5, 20] {
        let mut config = SimulatorConfig::default();
        config.engine.sm_setup_time = SimTime::from_micros(setup_us);
        let (antt, preemptions) = run_with(&config);
        table.add_row(vec![
            setup_us.to_string(),
            format!("{antt:.3}"),
            preemptions.to_string(),
        ]);
    }
    println!("{}", table.render());

    let mut config = SimulatorConfig::default();
    config.engine.sm_setup_time = SimTime::from_micros(5);
    c.bench_function("ablation/setup_5us", |b| {
        b.iter(|| run_with(black_box(&config)))
    });
}

criterion_group!(
    benches,
    ablate_pipeline_drain,
    ablate_block_jitter,
    ablate_sm_setup_time
);
criterion_main!(benches);
