//! Shared helpers for the benchmark harness.
//!
//! Every bench target in `benches/` regenerates one table or figure of the
//! paper (printing it to stdout) and then times a representative simulation
//! unit with Criterion. The experiment population is controlled with the
//! `GPREEMPT_SCALE` environment variable:
//!
//! * `quick` — five benchmarks, 2/4-process workloads, single executions
//!   (seconds; used by CI),
//! * `bench` — all ten benchmarks, 2/4/6/8-process workloads, reduced
//!   population (the default; a few minutes),
//! * `paper` — the full population described in §4.1 (tens of minutes
//!   sequentially; minutes with a parallel sweep).
//!
//! The figure benches route their experiment populations through the
//! [`SweepRunner`], parallelised across `GPREEMPT_JOBS` workers (default:
//! one per CPU; sweep results are bit-identical at every worker count, so
//! this only changes wall-clock time, never output).

#![warn(missing_docs)]

use gpreempt::experiments::ExperimentScale;
use gpreempt::sweep::SweepRunner;
use gpreempt::{PolicyKind, SimulationRun, Simulator, SimulatorConfig};
use gpreempt_trace::{parboil, ProcessSpec, Workload};

/// Reads the experiment scale from `GPREEMPT_SCALE` (default: `bench`).
pub fn scale_from_env() -> ExperimentScale {
    match std::env::var("GPREEMPT_SCALE").as_deref() {
        Ok("quick") => ExperimentScale::quick(),
        Ok("paper") => ExperimentScale::paper(),
        _ => ExperimentScale::bench(),
    }
}

/// Builds a sweep runner from `GPREEMPT_JOBS` (default `0` = one worker per
/// CPU; `1` restores the historical sequential harness execution).
pub fn runner_from_env() -> SweepRunner {
    let jobs = std::env::var("GPREEMPT_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    SweepRunner::new(jobs)
}

/// A small representative workload (two short applications, one completed
/// execution each) used as the timed unit of the figure benches, so Criterion
/// iterations stay in the low-millisecond range.
pub fn representative_workload(config: &SimulatorConfig) -> Workload {
    let gpu = &config.machine.gpu;
    Workload::new(
        "representative",
        vec![
            ProcessSpec::new(parboil::benchmark("spmv", gpu).expect("spmv")),
            ProcessSpec::new(parboil::benchmark("sgemm", gpu).expect("sgemm")),
        ],
    )
    .with_min_completions(1)
}

/// Runs the representative workload once under the given policy.
pub fn run_representative(config: &SimulatorConfig, policy: PolicyKind) -> SimulationRun {
    let sim = Simulator::new(config.clone());
    sim.run(&representative_workload(config), policy)
        .expect("representative run")
}
