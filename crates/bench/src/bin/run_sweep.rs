//! Command-line driver for the experiment sweeps: regenerate the paper's
//! evaluation (or one experiment of it) across worker threads and emit the
//! results as text tables or machine-readable JSON.
//!
//! ```text
//! cargo run --release -p gpreempt-bench --bin run_sweep -- \
//!     --experiment spatial --scale bench --jobs 8 --format json
//! ```
//!
//! Options:
//!
//! * `--experiment fig2|priority|spatial|mechanism|realtime|saturation|all`
//!   (default `all`)
//! * `--scale quick|bench|paper` (default `quick`)
//! * `--jobs N` worker threads; `0` = one per CPU (default `0`). Sweep
//!   results are bit-identical for every worker count, so this only
//!   changes wall-clock time.
//! * `--format table|json` (default `table`). JSON goes to stdout; the
//!   wall-clock summary always goes to stderr so piped JSON stays clean.
//! * `--queue heap|calendar` selects the event-queue backend (default
//!   `calendar`). Results are bit-identical either way; only throughput
//!   differs.
//! * `--seed N` overrides the workload-generation seed of the scale.
//! * `--timing` with `--format table`: also print the per-scenario
//!   wall-clock table. With either format, each experiment additionally
//!   reports its own events/sec line on stderr as it completes.
//! * `--out FILE` streams sweep records to FILE as JSON Lines. Realtime
//!   and saturation scenarios spill in completion order the moment each
//!   finishes; the other experiments append their report records as each
//!   experiment completes. The file is valid (and tail-able) mid-sweep.
//! * `--validate` reads report JSON from stdin, checks it parses and that
//!   `record_count` matches the records array, and exits non-zero on any
//!   mismatch (used by the CI smoke step).

use gpreempt::experiments::{
    ExperimentScale, Fig2Results, IsolatedRunCache, MechanismResults, PriorityResults,
    RealtimeResults, SaturationResults, SpatialResults,
};
use gpreempt::sim::QueueKind;
use gpreempt::sweep::{JsonlSink, SweepReport, SweepRunner, SweepTiming};
use gpreempt::SimulatorConfig;
use std::io::Read as _;

// Per-scenario allocation accounting for `--timing`: every allocation on a
// worker thread is charged to the scenario it was running. The forwarding
// allocator costs one thread-local increment per allocation — noise next
// to the allocation itself.
#[global_allocator]
static ALLOC: gpreempt::sim::CountingAlloc = gpreempt::sim::CountingAlloc::new();

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Experiment {
    Fig2,
    Priority,
    Spatial,
    Mechanism,
    Realtime,
    Saturation,
    All,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Json,
}

fn usage() {
    println!("usage: run_sweep [options]");
    println!(
        "  --experiment fig2|priority|spatial|mechanism|realtime|saturation|all (default all)"
    );
    println!("  --scale quick|bench|paper                          (default quick)");
    println!("  --jobs N          worker threads, 0 = one per CPU  (default 0)");
    println!("  --format table|json                                (default table)");
    println!("  --queue heap|calendar  event-queue backend          (default calendar)");
    println!("  --seed N          workload-generation seed override");
    println!("  --timing          print the per-scenario wall-clock table");
    println!("                    and per-experiment events/sec on stderr");
    println!("  --out FILE        stream sweep records to FILE as JSON Lines");
    println!("  --validate        validate report JSON from stdin and exit");
}

fn validate_stdin() -> Result<(), Box<dyn std::error::Error>> {
    let mut text = String::new();
    std::io::stdin().read_to_string(&mut text)?;
    match SweepReport::validate_json(&text) {
        Ok(0) => Err("report is valid JSON but contains no records".into()),
        Ok(n) => {
            println!("report OK: {n} records");
            Ok(())
        }
        Err(e) => Err(format!("invalid sweep report: {e}").into()),
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut experiment = Experiment::All;
    let mut scale_name = "quick".to_string();
    let mut jobs = 0usize;
    let mut format = Format::Table;
    let mut seed: Option<u64> = None;
    let mut queue = QueueKind::default();
    let mut timing_table = false;
    let mut out_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" => {
                experiment = match args.next().as_deref() {
                    Some("fig2") => Experiment::Fig2,
                    Some("priority") => Experiment::Priority,
                    Some("spatial") => Experiment::Spatial,
                    Some("mechanism") => Experiment::Mechanism,
                    Some("realtime") => Experiment::Realtime,
                    Some("saturation") => Experiment::Saturation,
                    Some("all") => Experiment::All,
                    other => return Err(format!("unknown experiment {other:?}").into()),
                }
            }
            "--scale" => scale_name = args.next().ok_or("missing scale")?,
            "--jobs" => jobs = args.next().ok_or("missing job count")?.parse()?,
            "--out" => out_path = Some(args.next().ok_or("missing output path")?),
            "--format" => {
                format = match args.next().as_deref() {
                    Some("table") => Format::Table,
                    Some("json") => Format::Json,
                    other => return Err(format!("unknown format {other:?}").into()),
                }
            }
            "--queue" => {
                queue = match args.next().as_deref() {
                    Some("heap") => QueueKind::Heap,
                    Some("calendar") => QueueKind::Calendar,
                    other => return Err(format!("unknown queue backend {other:?}").into()),
                }
            }
            "--seed" => seed = Some(args.next().ok_or("missing seed")?.parse()?),
            "--timing" => timing_table = true,
            "--validate" => return validate_stdin(),
            "--help" | "-h" => {
                usage();
                return Ok(());
            }
            other => return Err(format!("unknown option {other:?} (see --help)").into()),
        }
    }

    let mut scale = match scale_name.as_str() {
        "quick" => ExperimentScale::quick(),
        "bench" => ExperimentScale::bench(),
        "paper" => ExperimentScale::paper(),
        other => return Err(format!("unknown scale {other:?}").into()),
    };
    if let Some(seed) = seed {
        scale.seed = seed;
    }

    let config = SimulatorConfig::default();
    let runner = SweepRunner::new(jobs).with_queue(queue);
    // One isolated-run cache for the whole invocation: under
    // `--experiment all` the priority, spatial, mechanism and realtime
    // experiments share the same base configuration, so each distinct
    // isolated scenario simulates exactly once instead of once per
    // experiment.
    let isolated_cache = IsolatedRunCache::new();
    // Optional disk spill: realtime scenarios stream as they complete; the
    // other experiments append their report records per experiment.
    let sink = match &out_path {
        Some(path) => Some(JsonlSink::create(path)?),
        None => None,
    };
    let mut report = SweepReport::new(scale.seed);
    let mut timing = SweepTiming::default();
    let mut tables: Vec<String> = Vec::new();
    let spill =
        |report: &SweepReport, first_new: usize| -> Result<(), Box<dyn std::error::Error>> {
            if let Some(sink) = &sink {
                sink.append_all(&report.records()[first_new..])?;
            }
            Ok(())
        };
    // Per-experiment throughput, printed the moment each experiment
    // completes so a long `--scale paper` run shows progress. Stderr, like
    // the final summary, so piped JSON stays clean.
    let note = |name: &str, t: &SweepTiming| {
        if timing_table {
            eprintln!(
                "{name}: {} scenarios, {} events in {:.2?} ({:.0} events/s, {} queue)",
                t.entries.len(),
                t.events,
                t.total,
                t.events_per_sec(),
                queue.label(),
            );
        }
    };

    if matches!(experiment, Experiment::Fig2 | Experiment::All) {
        let results = Fig2Results::run_with(&config, &runner)?;
        note("fig2", results.timing());
        tables.push(results.render().render());
        let first_new = report.len();
        report.merge(results.report());
        spill(&report, first_new)?;
        timing = timing.merged(results.timing().clone());
    }
    if matches!(experiment, Experiment::Priority | Experiment::All) {
        let results = PriorityResults::run_with_cache(&config, &scale, &runner, &isolated_cache)?;
        note("priority", results.timing());
        tables.push(results.render_fig5().render());
        tables.push(results.render_fig6(false).render());
        tables.push(results.render_fig6(true).render());
        let first_new = report.len();
        report.merge(results.report());
        spill(&report, first_new)?;
        timing = timing.merged(results.timing().clone());
    }
    if matches!(experiment, Experiment::Spatial | Experiment::All) {
        let results = SpatialResults::run_with_cache(&config, &scale, &runner, &isolated_cache)?;
        note("spatial", results.timing());
        tables.push(results.render_fig7a().render());
        tables.push(results.render_fig7b().render());
        tables.push(results.render_fig7c().render());
        tables.push(results.render_fig8().render());
        let first_new = report.len();
        report.merge(results.report());
        spill(&report, first_new)?;
        timing = timing.merged(results.timing().clone());
    }
    if matches!(experiment, Experiment::Mechanism | Experiment::All) {
        let results = MechanismResults::run_with_cache(&config, &scale, &runner, &isolated_cache)?;
        note("mechanism", results.timing());
        tables.push(results.render().render());
        let first_new = report.len();
        report.merge(results.report());
        spill(&report, first_new)?;
        timing = timing.merged(results.timing().clone());
    }
    if matches!(experiment, Experiment::Realtime | Experiment::All) {
        // The realtime harness streams its raw per-scenario records through
        // the sink itself (completion order); only the aggregated cell
        // records go through the shared report.
        let results = RealtimeResults::run_streaming(
            &config,
            &scale,
            &runner,
            &isolated_cache,
            sink.as_ref(),
        )?;
        note("realtime", results.timing());
        tables.push(results.render().render());
        report.merge(results.report());
        timing = timing.merged(results.timing().clone());
    }
    if matches!(experiment, Experiment::Saturation | Experiment::All) {
        // Like realtime, the saturation harness streams its raw
        // per-scenario points through the sink in completion order.
        let results = SaturationResults::run_streaming(
            &config,
            &scale,
            &runner,
            &isolated_cache,
            sink.as_ref(),
        )?;
        note("saturation", results.timing());
        tables.push(results.render().render());
        report.merge(results.report());
        timing = timing.merged(results.timing().clone());
    }

    match format {
        Format::Table => {
            for table in &tables {
                println!("{table}");
            }
            if timing_table {
                println!("{}", timing.render().render());
            }
        }
        Format::Json => println!("{}", report.to_json()),
    }
    // The wall-clock summary is informational and run-to-run varying, so
    // it goes to stderr: `--format json | run_sweep --validate` stays
    // clean.
    eprintln!("{}", timing.summary());
    if let (Some(sink), Some(path)) = (&sink, &out_path) {
        eprintln!("streamed {} records to {path}", sink.written());
    }
    if isolated_cache.hits() > 0 {
        eprintln!(
            "isolated-run cache: {} simulated, {} reused across experiments",
            isolated_cache.misses(),
            isolated_cache.hits()
        );
    }
    if let Some(slowest) = timing.slowest() {
        eprintln!(
            "slowest scenario: {} / {} / {} at {:.2?}",
            slowest.group, slowest.workload, slowest.label, slowest.wall
        );
    }
    Ok(())
}
