//! Command-line driver for the experiment sweeps: regenerate the paper's
//! evaluation (or one experiment of it) across worker threads and emit the
//! results as text tables or machine-readable JSON.
//!
//! ```text
//! cargo run --release -p gpreempt-bench --bin run_sweep -- \
//!     --experiment spatial --scale bench --jobs 8 --format json
//! ```
//!
//! Options:
//!
//! * `--experiment fig2|priority|spatial|mechanism|realtime|saturation|all`
//!   (default `all`)
//! * `--scale quick|bench|paper` (default `quick`)
//! * `--jobs N` worker threads; `0` = one per CPU (default `0`). Sweep
//!   results are bit-identical for every worker count, so this only
//!   changes wall-clock time.
//! * `--format table|json` (default `table`). JSON goes to stdout; the
//!   wall-clock summary always goes to stderr so piped JSON stays clean.
//! * `--queue auto|heap|calendar` selects the event-queue backend
//!   (default `auto`: calendar for open-arrival workloads, whose event
//!   population churns, heap otherwise). Results are bit-identical for
//!   every choice; only throughput differs.
//! * `--seed N` overrides the workload-generation seed of the scale.
//! * `--affinity` pins each sweep worker to a core (Linux only; a no-op
//!   elsewhere).
//! * `--depth-trace US` samples every process's queue depth every `US`
//!   microseconds of simulated time; the traces ride along as a `series`
//!   field on saturation JSONL records.
//! * `--timing` with `--format table`: also print the per-scenario
//!   wall-clock table. With either format, each experiment additionally
//!   reports its own events/sec line on stderr as it completes.
//! * `--out FILE` streams sweep records to FILE as JSON Lines. Realtime
//!   and saturation scenarios spill in completion order the moment each
//!   finishes; the other experiments append their report records as each
//!   experiment completes. The file is valid (and tail-able) mid-sweep.
//! * `--validate` reads report JSON from stdin, checks it parses and that
//!   `record_count` matches the records array, and exits non-zero on any
//!   mismatch (used by the CI smoke step).
//!
//! ## Sharding
//!
//! * `--shard K/N` simulates only stripe `K` of the scenario population
//!   (scenario `id % N == K` of every experiment's plan — the partition
//!   is a function of the plan alone, never of `--jobs`), checkpointing
//!   each completed scenario's fold value to a JSON Lines file whose
//!   first line is a manifest (experiment, scale, seed, stripe, schema
//!   fingerprint). Re-running the same command resumes: completed
//!   scenarios are skipped, a torn final line from a kill is discarded.
//!   `--shard-out FILE` names the checkpoint (default
//!   `shard-K-of-N.jsonl`); `--out` is rejected — a shard produces a
//!   checkpoint, not a report.
//! * `run_sweep merge FILE...` cross-validates the shard manifests,
//!   reassembles the checkpointed values in scenario-id order and runs
//!   the unchanged aggregation, emitting a report byte-identical to the
//!   unsharded run. Accepts `--format`, `--out`, `--jobs`, `--timing`.

use gpreempt::experiments::{
    ExperimentScale, Fig2Results, IsolatedRunCache, MechanismResults, PriorityResults,
    RealtimeResults, SaturationResults, SpatialResults,
};
use gpreempt::sim::QueueKind;
use gpreempt::sweep::{
    JsonlSink, MergedValues, ShardManifest, ShardSession, ShardSpec, SweepExec, SweepReport,
    SweepRunner, SweepTiming,
};
use gpreempt::SimulatorConfig;
use gpreempt_types::SimTime;
use std::io::Read as _;

// Per-scenario allocation accounting for `--timing`: every allocation on a
// worker thread is charged to the scenario it was running. The forwarding
// allocator costs one thread-local increment per allocation — noise next
// to the allocation itself.
#[global_allocator]
static ALLOC: gpreempt::sim::CountingAlloc = gpreempt::sim::CountingAlloc::new();

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Experiment {
    Fig2,
    Priority,
    Spatial,
    Mechanism,
    Realtime,
    Saturation,
    All,
}

impl Experiment {
    fn parse(text: &str) -> Result<Self, String> {
        match text {
            "fig2" => Ok(Experiment::Fig2),
            "priority" => Ok(Experiment::Priority),
            "spatial" => Ok(Experiment::Spatial),
            "mechanism" => Ok(Experiment::Mechanism),
            "realtime" => Ok(Experiment::Realtime),
            "saturation" => Ok(Experiment::Saturation),
            "all" => Ok(Experiment::All),
            other => Err(format!("unknown experiment {other:?}")),
        }
    }

    /// The selector string recorded in shard manifests.
    fn label(self) -> &'static str {
        match self {
            Experiment::Fig2 => "fig2",
            Experiment::Priority => "priority",
            Experiment::Spatial => "spatial",
            Experiment::Mechanism => "mechanism",
            Experiment::Realtime => "realtime",
            Experiment::Saturation => "saturation",
            Experiment::All => "all",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Table,
    Json,
}

fn usage() {
    println!("usage: run_sweep [options]");
    println!("       run_sweep merge SHARD.jsonl... [--format table|json] [--out FILE]");
    println!(
        "  --experiment fig2|priority|spatial|mechanism|realtime|saturation|all (default all)"
    );
    println!("  --scale quick|bench|paper                          (default quick)");
    println!("  --jobs N          worker threads, 0 = one per CPU  (default 0)");
    println!("  --format table|json                                (default table)");
    println!("  --queue auto|heap|calendar  event-queue backend    (default auto:");
    println!("                    calendar for open-arrival workloads, heap otherwise)");
    println!("  --seed N          workload-generation seed override");
    println!("  --affinity        pin each sweep worker to a core (Linux; no-op elsewhere)");
    println!("  --depth-trace US  sample per-process queue depth every US microseconds");
    println!("  --shard K/N       simulate only scenario ids with id % N == K,");
    println!("                    checkpointing fold values; resumes automatically");
    println!("  --shard-out FILE  shard checkpoint path (default shard-K-of-N.jsonl)");
    println!("  --timing          print the per-scenario wall-clock table");
    println!("                    and per-experiment events/sec on stderr");
    println!("  --out FILE        stream sweep records to FILE as JSON Lines");
    println!("  --validate        validate report JSON from stdin and exit");
}

fn validate_stdin() -> Result<(), Box<dyn std::error::Error>> {
    let mut text = String::new();
    std::io::stdin().read_to_string(&mut text)?;
    match SweepReport::validate_json(&text) {
        Ok(0) => Err("report is valid JSON but contains no records".into()),
        Ok(n) => {
            println!("report OK: {n} records");
            Ok(())
        }
        Err(e) => Err(format!("invalid sweep report: {e}").into()),
    }
}

fn scale_by_name(name: &str) -> Result<ExperimentScale, String> {
    match name {
        "quick" => Ok(ExperimentScale::quick()),
        "bench" => Ok(ExperimentScale::bench()),
        "paper" => Ok(ExperimentScale::paper()),
        other => Err(format!("unknown scale {other:?}")),
    }
}

/// Runs the selected experiments under `exec` and collects their report,
/// rendered tables and merged timing. In shard mode the harnesses yield no
/// results (their fold values go to the checkpoint instead), so the report
/// and tables come back empty; in full and merge mode the output is
/// identical by construction.
#[allow(clippy::too_many_arguments)]
fn run_experiments(
    experiment: Experiment,
    config: &SimulatorConfig,
    scale: &ExperimentScale,
    runner: &SweepRunner,
    isolated_cache: &IsolatedRunCache,
    sink: Option<&JsonlSink>,
    exec: &SweepExec<'_>,
    timing_table: bool,
    queue_label: &str,
) -> Result<(SweepReport, Vec<String>, SweepTiming), Box<dyn std::error::Error>> {
    let mut report = SweepReport::new(scale.seed);
    let mut timing = SweepTiming::default();
    let mut tables: Vec<String> = Vec::new();
    // Optional disk spill: realtime and saturation scenarios stream as they
    // complete; the other experiments append their report records per
    // experiment.
    let spill =
        |report: &SweepReport, first_new: usize| -> Result<(), Box<dyn std::error::Error>> {
            if let Some(sink) = sink {
                sink.append_all(&report.records()[first_new..])?;
            }
            Ok(())
        };
    // Per-experiment throughput, printed the moment each experiment
    // completes so a long `--scale paper` run shows progress. Stderr, like
    // the final summary, so piped JSON stays clean.
    let note = |name: &str, t: &SweepTiming| {
        if timing_table {
            eprintln!(
                "{name}: {} scenarios, {} events in {:.2?} ({:.0} events/s, {} queue)",
                t.entries.len(),
                t.events,
                t.total,
                t.events_per_sec(),
                queue_label,
            );
        }
    };

    if matches!(experiment, Experiment::Fig2 | Experiment::All) {
        if let Some(results) = Fig2Results::run_exec(config, runner, exec)? {
            note("fig2", results.timing());
            tables.push(results.render().render());
            let first_new = report.len();
            report.merge(results.report());
            spill(&report, first_new)?;
            timing = timing.merged(results.timing().clone());
        }
    }
    if matches!(experiment, Experiment::Priority | Experiment::All) {
        if let Some(results) =
            PriorityResults::run_exec(config, scale, runner, isolated_cache, exec)?
        {
            note("priority", results.timing());
            tables.push(results.render_fig5().render());
            tables.push(results.render_fig6(false).render());
            tables.push(results.render_fig6(true).render());
            let first_new = report.len();
            report.merge(results.report());
            spill(&report, first_new)?;
            timing = timing.merged(results.timing().clone());
        }
    }
    if matches!(experiment, Experiment::Spatial | Experiment::All) {
        if let Some(results) =
            SpatialResults::run_exec(config, scale, runner, isolated_cache, exec)?
        {
            note("spatial", results.timing());
            tables.push(results.render_fig7a().render());
            tables.push(results.render_fig7b().render());
            tables.push(results.render_fig7c().render());
            tables.push(results.render_fig8().render());
            let first_new = report.len();
            report.merge(results.report());
            spill(&report, first_new)?;
            timing = timing.merged(results.timing().clone());
        }
    }
    if matches!(experiment, Experiment::Mechanism | Experiment::All) {
        if let Some(results) =
            MechanismResults::run_exec(config, scale, runner, isolated_cache, exec)?
        {
            note("mechanism", results.timing());
            tables.push(results.render().render());
            let first_new = report.len();
            report.merge(results.report());
            spill(&report, first_new)?;
            timing = timing.merged(results.timing().clone());
        }
    }
    if matches!(experiment, Experiment::Realtime | Experiment::All) {
        // The realtime harness streams its raw per-scenario records through
        // the sink itself (completion order; scenario-id order in a merge);
        // only the aggregated cell records go through the shared report.
        if let Some(results) =
            RealtimeResults::run_exec(config, scale, runner, isolated_cache, sink, exec)?
        {
            note("realtime", results.timing());
            tables.push(results.render().render());
            report.merge(results.report());
            timing = timing.merged(results.timing().clone());
        }
    }
    if matches!(experiment, Experiment::Saturation | Experiment::All) {
        // Like realtime, the saturation harness streams its raw
        // per-scenario points through the sink itself.
        if let Some(results) =
            SaturationResults::run_exec(config, scale, runner, isolated_cache, sink, exec)?
        {
            note("saturation", results.timing());
            tables.push(results.render().render());
            report.merge(results.report());
            timing = timing.merged(results.timing().clone());
        }
    }
    Ok((report, tables, timing))
}

/// The `merge` subcommand: reassemble shard checkpoints into the report an
/// unsharded run would have produced (byte-identical by construction — the
/// aggregation code is the same, fed the same per-scenario values in the
/// same order).
fn merge_main(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut format = Format::Table;
    let mut out_path: Option<String> = None;
    let mut jobs = 0usize;
    let mut timing_table = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => {
                format = match it.next().map(String::as_str) {
                    Some("table") => Format::Table,
                    Some("json") => Format::Json,
                    other => return Err(format!("unknown format {other:?}").into()),
                }
            }
            "--out" => out_path = Some(it.next().ok_or("missing output path")?.clone()),
            "--jobs" => jobs = it.next().ok_or("missing job count")?.parse()?,
            "--timing" => timing_table = true,
            "--help" | "-h" => {
                usage();
                return Ok(());
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown merge option {other:?} (see --help)").into())
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        return Err("merge needs at least one shard checkpoint file".into());
    }

    let merged = MergedValues::load(&files)?;
    let experiment = Experiment::parse(&merged.manifest().experiment)?;
    let mut scale = scale_by_name(&merged.manifest().scale)?;
    scale.seed = merged.manifest().seed;
    if let Some(us) = merged.manifest().depth_trace_us {
        scale = scale.with_depth_trace(Some(SimTime::from_micros(us)));
    }

    let config = SimulatorConfig::default();
    // Only the cheap isolated probes actually simulate during a merge; the
    // sweep bodies are replayed from the checkpoints.
    let runner = SweepRunner::new(jobs).with_auto_queue();
    let isolated_cache = IsolatedRunCache::new();
    let sink = match &out_path {
        Some(path) => Some(JsonlSink::create(path)?),
        None => None,
    };
    let exec = SweepExec::Merge(&merged);
    let (report, tables, timing) = run_experiments(
        experiment,
        &config,
        &scale,
        &runner,
        &isolated_cache,
        sink.as_ref(),
        &exec,
        timing_table,
        "auto",
    )?;

    match format {
        Format::Table => {
            for table in &tables {
                println!("{table}");
            }
            if timing_table {
                println!("{}", timing.render().render());
            }
        }
        Format::Json => println!("{}", report.to_json()),
    }
    eprintln!(
        "merged {} checkpointed scenarios from {} shard file(s)",
        merged.len(),
        files.len()
    );
    if let (Some(sink), Some(path)) = (&sink, &out_path) {
        eprintln!("streamed {} records to {path}", sink.written());
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cli: Vec<String> = std::env::args().skip(1).collect();
    if cli.first().map(String::as_str) == Some("merge") {
        return merge_main(&cli[1..]);
    }

    let mut experiment = Experiment::All;
    let mut scale_name = "quick".to_string();
    let mut jobs = 0usize;
    let mut format = Format::Table;
    let mut seed: Option<u64> = None;
    let mut queue: Option<QueueKind> = None;
    let mut affinity = false;
    let mut depth_trace_us: Option<u64> = None;
    let mut timing_table = false;
    let mut out_path: Option<String> = None;
    let mut shard: Option<ShardSpec> = None;
    let mut shard_out: Option<String> = None;

    let mut args = cli.into_iter();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--experiment" => {
                experiment = Experiment::parse(args.next().as_deref().unwrap_or("(missing)"))?;
            }
            "--scale" => scale_name = args.next().ok_or("missing scale")?,
            "--jobs" => jobs = args.next().ok_or("missing job count")?.parse()?,
            "--out" => out_path = Some(args.next().ok_or("missing output path")?),
            "--format" => {
                format = match args.next().as_deref() {
                    Some("table") => Format::Table,
                    Some("json") => Format::Json,
                    other => return Err(format!("unknown format {other:?}").into()),
                }
            }
            "--queue" => {
                queue = match args.next().as_deref() {
                    Some("auto") => None,
                    Some("heap") => Some(QueueKind::Heap),
                    Some("calendar") => Some(QueueKind::Calendar),
                    other => return Err(format!("unknown queue backend {other:?}").into()),
                }
            }
            "--seed" => seed = Some(args.next().ok_or("missing seed")?.parse()?),
            "--affinity" => affinity = true,
            "--depth-trace" => {
                depth_trace_us = Some(args.next().ok_or("missing depth-trace interval")?.parse()?);
            }
            "--shard" => {
                shard = Some(ShardSpec::parse(&args.next().ok_or("missing shard spec")?)?);
            }
            "--shard-out" => shard_out = Some(args.next().ok_or("missing shard path")?),
            "--timing" => timing_table = true,
            "--validate" => return validate_stdin(),
            "--help" | "-h" => {
                usage();
                return Ok(());
            }
            other => return Err(format!("unknown option {other:?} (see --help)").into()),
        }
    }

    let mut scale = scale_by_name(&scale_name)?;
    if let Some(seed) = seed {
        scale.seed = seed;
    }
    if let Some(us) = depth_trace_us {
        scale = scale.with_depth_trace(Some(SimTime::from_micros(us)));
    }

    // A shard run writes a checkpoint, not a report; the two outputs are
    // mutually exclusive by design.
    let session = match shard {
        Some(spec) => {
            if out_path.is_some() {
                return Err("--out cannot be combined with --shard: a shard writes a \
                     checkpoint; run `run_sweep merge <shards...> --out FILE` instead"
                    .into());
            }
            let path = shard_out
                .take()
                .unwrap_or_else(|| format!("shard-{}-of-{}.jsonl", spec.index, spec.count));
            let manifest = ShardManifest::new(
                experiment.label(),
                &scale_name,
                scale.seed,
                spec,
                depth_trace_us,
            );
            Some((ShardSession::open(&path, manifest)?, path))
        }
        None => {
            if shard_out.is_some() {
                return Err("--shard-out requires --shard".into());
            }
            None
        }
    };

    let config = SimulatorConfig::default();
    let runner = match queue {
        Some(kind) => SweepRunner::new(jobs).with_queue(kind),
        None => SweepRunner::new(jobs).with_auto_queue(),
    }
    .with_affinity(affinity);
    let queue_label = queue.map_or("auto", QueueKind::label);
    // One isolated-run cache for the whole invocation: under
    // `--experiment all` the priority, spatial, mechanism and realtime
    // experiments share the same base configuration, so each distinct
    // isolated scenario simulates exactly once instead of once per
    // experiment.
    let isolated_cache = IsolatedRunCache::new();
    let sink = match &out_path {
        Some(path) => Some(JsonlSink::create(path)?),
        None => None,
    };
    let exec = match &session {
        Some((session, _)) => SweepExec::Shard(session),
        None => SweepExec::Full,
    };

    let (report, tables, timing) = run_experiments(
        experiment,
        &config,
        &scale,
        &runner,
        &isolated_cache,
        sink.as_ref(),
        &exec,
        timing_table,
        queue_label,
    )?;

    if let Some((session, path)) = &session {
        // A shard run has no report or tables — its entire output is the
        // checkpoint. Say what happened and stop.
        eprintln!(
            "shard {}: {} scenarios checkpointed this run, {} recovered from a \
             previous run -> {path}",
            session.manifest().shard.label(),
            session.written(),
            session.resumed(),
        );
        return Ok(());
    }

    match format {
        Format::Table => {
            for table in &tables {
                println!("{table}");
            }
            if timing_table {
                println!("{}", timing.render().render());
            }
        }
        Format::Json => println!("{}", report.to_json()),
    }
    // The wall-clock summary is informational and run-to-run varying, so
    // it goes to stderr: `--format json | run_sweep --validate` stays
    // clean.
    eprintln!("{}", timing.summary());
    if let (Some(sink), Some(path)) = (&sink, &out_path) {
        eprintln!("streamed {} records to {path}", sink.written());
    }
    if isolated_cache.hits() > 0 {
        eprintln!(
            "isolated-run cache: {} simulated, {} reused across experiments",
            isolated_cache.misses(),
            isolated_cache.hits()
        );
    }
    if let Some(slowest) = timing.slowest() {
        eprintln!(
            "slowest scenario: {} / {} / {} at {:.2?}",
            slowest.group, slowest.workload, slowest.label, slowest.wall
        );
    }
    Ok(())
}
