//! Command-line driver: simulate one multiprogrammed workload and print its
//! metrics.
//!
//! ```text
//! cargo run --release -p gpreempt-bench --bin run_workload -- \
//!     --policy dss --mechanism context-switch spmv sgemm lbm histo
//! ```
//!
//! Arguments are benchmark names (repeatable); options:
//!
//! * `--policy fcfs|npq|ppq|ppq-shared|dss` (default `dss`)
//! * `--mechanism context-switch|draining` (default `context-switch`)
//! * `--high-priority <index>` mark the i-th process as high priority
//! * `--completions <n>` replay target (default 3)
//! * `--seed <n>` RNG seed

use gpreempt::{PolicyKind, Simulator, SimulatorConfig};
use gpreempt_gpu::PreemptionMechanism;
use gpreempt_trace::{parboil, ProcessSpec, Workload};
use gpreempt_types::{Priority, ProcessId};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut policy = PolicyKind::Dss;
    let mut mechanism = PreemptionMechanism::ContextSwitch;
    let mut high_priority: Option<usize> = None;
    let mut completions = 3u32;
    let mut seed = 0x5EEDu64;
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => {
                policy = match args.next().as_deref() {
                    Some("fcfs") => PolicyKind::Fcfs,
                    Some("npq") => PolicyKind::Npq,
                    Some("ppq") => PolicyKind::PpqExclusive,
                    Some("ppq-shared") => PolicyKind::PpqShared,
                    Some("dss") => PolicyKind::Dss,
                    other => return Err(format!("unknown policy {other:?}").into()),
                }
            }
            "--mechanism" => {
                mechanism = match args.next().as_deref() {
                    Some("context-switch") => PreemptionMechanism::ContextSwitch,
                    Some("draining") => PreemptionMechanism::Draining,
                    other => return Err(format!("unknown mechanism {other:?}").into()),
                }
            }
            "--high-priority" => {
                high_priority = Some(args.next().ok_or("missing index")?.parse()?);
            }
            "--completions" => completions = args.next().ok_or("missing count")?.parse()?,
            "--seed" => seed = args.next().ok_or("missing seed")?.parse()?,
            "--help" | "-h" => {
                println!("usage: run_workload [options] <benchmark> [<benchmark> ...]");
                println!("benchmarks: {}", parboil::BENCHMARK_NAMES.join(", "));
                return Ok(());
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = vec![
            "spmv".into(),
            "sgemm".into(),
            "histo".into(),
            "mri-q".into(),
        ];
    }

    let config = SimulatorConfig::default()
        .with_mechanism(mechanism)
        .with_seed(seed);
    let sim = Simulator::new(config.clone());
    let gpu = &config.machine.gpu;

    let processes: Vec<ProcessSpec> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let benchmark = parboil::benchmark(name, gpu).ok_or_else(|| {
                format!(
                    "unknown benchmark {name}; valid names: {}",
                    parboil::BENCHMARK_NAMES.join(", ")
                )
            })?;
            let spec = ProcessSpec::new(benchmark);
            Ok(if Some(i) == high_priority {
                spec.with_priority(Priority::HIGH)
            } else {
                spec
            })
        })
        .collect::<Result<_, String>>()?;
    let workload = Workload::new(names.join("+"), processes).with_min_completions(completions);

    println!(
        "workload: {}  policy: {}  mechanism: {}",
        workload.name(),
        policy,
        mechanism
    );
    let wall = Instant::now();
    let isolated = sim.isolated_times(&workload)?;
    let run = sim.run(&workload, policy)?;
    let metrics = run.metrics(&isolated)?;
    let wall = wall.elapsed();

    println!(
        "simulated time: {}   events: {}   wall clock: {:.2?}",
        run.end_time(),
        run.events_processed(),
        wall
    );
    println!(
        "ANTT {:.3}   STP {:.3}   fairness {:.3}   preemptions {}",
        metrics.antt(),
        metrics.stp(),
        metrics.fairness(),
        run.engine_stats().preemptions
    );
    for (i, spec) in workload.processes().iter().enumerate() {
        let p = ProcessId::from(i);
        println!(
            "  {:<14} isolated {:>10.3} ms   turnaround {:>10.3} ms   NTT {:>6.2}   completions {}",
            spec.benchmark.name(),
            isolated[i].as_millis_f64(),
            run.mean_turnaround(p).as_millis_f64(),
            metrics.ntt()[i],
            run.iterations()[i].len(),
        );
    }
    Ok(())
}
