//! Command-line driver: simulate one multiprogrammed workload and print its
//! metrics.
//!
//! ```text
//! cargo run --release -p gpreempt-bench --bin run_workload -- \
//!     --policy dss --mechanism context-switch spmv sgemm lbm histo
//! ```
//!
//! Arguments are benchmark names (repeatable); options:
//!
//! * `--policy fcfs|npq|ppq|ppq-shared|dss|gcaps|edf|rr` (default `dss`;
//!   `rr` arms the policy's default 200us quantum and rotates SMs on it)
//! * `--mechanism context-switch|draining|adaptive[:latency_target_us]`
//!   (default `context-switch`); `adaptive` lets the engine pick the
//!   cheaper mechanism at each preemption, optionally subject to a
//!   preemption-latency target in microseconds (e.g. `adaptive:50`)
//! * `--high-priority <index>` mark the i-th process as high priority
//! * `--deadline-ms <ms>` give every process an implicit-deadline
//!   [`RtSpec`] of that many milliseconds and report deadline-miss
//!   metrics (the deadline-aware policies `gcaps`/`edf` act on it)
//! * `--completions <n>` replay target (default 3)
//! * `--seed <n>` RNG seed

use gpreempt::{PolicyKind, Simulator, SimulatorConfig};
use gpreempt_gpu::MechanismSelection;
use gpreempt_trace::{parboil, ProcessSpec, Workload};
use gpreempt_types::{Priority, ProcessId, RtSpec, SimTime};
use std::time::Instant;

/// Parses a `--mechanism` value: a fixed mechanism name, `adaptive`, or
/// `adaptive:<latency target in microseconds>`.
fn parse_mechanism(value: &str) -> Result<MechanismSelection, String> {
    use gpreempt_gpu::PreemptionMechanism;
    match value {
        "context-switch" => Ok(MechanismSelection::Fixed(
            PreemptionMechanism::ContextSwitch,
        )),
        "draining" => Ok(MechanismSelection::Fixed(PreemptionMechanism::Draining)),
        "adaptive" => Ok(MechanismSelection::adaptive()),
        other => match other.strip_prefix("adaptive:") {
            Some(target) => {
                let us: f64 = target
                    .parse()
                    .map_err(|e| format!("bad latency target {target:?}: {e}"))?;
                if !us.is_finite() || us <= 0.0 {
                    return Err(format!("latency target must be positive, got {target:?}"));
                }
                Ok(MechanismSelection::adaptive_with_target(
                    SimTime::from_micros_f64(us),
                ))
            }
            None => Err(format!("unknown mechanism {other:?}")),
        },
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut policy = PolicyKind::Dss;
    let mut mechanism = MechanismSelection::default();
    let mut high_priority: Option<usize> = None;
    let mut deadline: Option<SimTime> = None;
    let mut completions = 3u32;
    let mut seed = 0x5EEDu64;
    let mut names: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => {
                policy = match args.next().as_deref() {
                    Some("fcfs") => PolicyKind::Fcfs,
                    Some("npq") => PolicyKind::Npq,
                    Some("ppq") => PolicyKind::PpqExclusive,
                    Some("ppq-shared") => PolicyKind::PpqShared,
                    Some("dss") => PolicyKind::Dss,
                    Some("gcaps") => PolicyKind::Gcaps,
                    Some("edf") => PolicyKind::Edf,
                    Some("rr") => PolicyKind::RoundRobin,
                    other => return Err(format!("unknown policy {other:?}").into()),
                }
            }
            "--mechanism" => {
                let value = args.next().ok_or("missing mechanism")?;
                mechanism = parse_mechanism(&value)?;
            }
            "--high-priority" => {
                high_priority = Some(args.next().ok_or("missing index")?.parse()?);
            }
            "--deadline-ms" => {
                let ms: f64 = args.next().ok_or("missing deadline")?.parse()?;
                if !ms.is_finite() || ms <= 0.0 {
                    return Err("deadline must be positive".into());
                }
                deadline = Some(SimTime::from_micros_f64(ms * 1_000.0));
            }
            "--completions" => completions = args.next().ok_or("missing count")?.parse()?,
            "--seed" => seed = args.next().ok_or("missing seed")?.parse()?,
            "--help" | "-h" => {
                println!("usage: run_workload [options] <benchmark> [<benchmark> ...]");
                println!("benchmarks: {}", parboil::BENCHMARK_NAMES.join(", "));
                return Ok(());
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = vec![
            "spmv".into(),
            "sgemm".into(),
            "histo".into(),
            "mri-q".into(),
        ];
    }

    let config = SimulatorConfig::default()
        .with_selection(mechanism)
        .with_seed(seed);
    let sim = Simulator::new(config.clone());
    let gpu = &config.machine.gpu;

    let processes: Vec<ProcessSpec> = names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let benchmark = parboil::benchmark(name, gpu).ok_or_else(|| {
                format!(
                    "unknown benchmark {name}; valid names: {}",
                    parboil::BENCHMARK_NAMES.join(", ")
                )
            })?;
            let mut spec = ProcessSpec::new(benchmark);
            if Some(i) == high_priority {
                spec = spec.with_priority(Priority::HIGH);
            }
            if let Some(deadline) = deadline {
                // With a real-time contract the scheduler derives priority
                // from criticality, so --high-priority must map onto a
                // High-criticality contract or it would be silently lost.
                let mut rt = RtSpec::implicit(deadline);
                if Some(i) == high_priority {
                    rt = rt.with_criticality(gpreempt_types::Criticality::High);
                }
                spec = spec.with_rt(rt);
            }
            Ok(spec)
        })
        .collect::<Result<_, String>>()?;
    let workload = Workload::new(names.join("+"), processes).with_min_completions(completions);

    println!(
        "workload: {}  policy: {}  mechanism: {}",
        workload.name(),
        policy,
        mechanism
    );
    let wall = Instant::now();
    let isolated = sim.isolated_times(&workload)?;
    let run = sim.run(&workload, policy)?;
    let metrics = run.metrics(&isolated)?;
    let wall = wall.elapsed();

    println!(
        "simulated time: {}   events: {}   wall clock: {:.2?}",
        run.end_time(),
        run.events_processed(),
        wall
    );
    let stats = run.engine_stats();
    println!(
        "ANTT {:.3}   STP {:.3}   fairness {:.3}   preemptions {}   mean preempt latency {}",
        metrics.antt(),
        metrics.stp(),
        metrics.fairness(),
        stats.preemptions,
        stats.mean_preemption_latency(),
    );
    if mechanism.is_adaptive() {
        println!(
            "adaptive picks: {} drain / {} context-switch   mean estimate error {}",
            stats.adaptive_drain_picks,
            stats.adaptive_cs_picks,
            stats.mean_estimate_error(),
        );
    }
    if workload.has_rt() {
        let rt = run.rt_metrics(&workload);
        println!(
            "deadline miss rate {:.3} ({} of {} executions)   mean response {:.3} ms   max tardiness {:.3} ms",
            rt.miss_rate(),
            rt.missed(),
            rt.completed(),
            rt.mean_response().as_millis_f64(),
            rt.max_tardiness().as_millis_f64(),
        );
    }
    for (i, spec) in workload.processes().iter().enumerate() {
        let p = ProcessId::from(i);
        println!(
            "  {:<14} isolated {:>10.3} ms   turnaround {:>10.3} ms   NTT {:>6.2}   completions {}",
            spec.benchmark.name(),
            isolated[i].as_millis_f64(),
            run.mean_turnaround(p).as_millis_f64(),
            metrics.ntt()[i],
            run.iterations()[i].len(),
        );
    }
    Ok(())
}
