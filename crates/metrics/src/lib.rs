//! System-level multiprogram performance metrics.
//!
//! The paper evaluates every experiment with the metrics of Eyerman &
//! Eeckhout, *"System-level performance metrics for multiprogram workloads"*
//! (IEEE Micro 2008), computed from each application's execution time in
//! isolation and inside the multiprogrammed workload (§4.1):
//!
//! * **NTT** — normalized turnaround time of one application,
//! * **ANTT** — the arithmetic mean of the NTTs of a workload,
//! * **STP** — system throughput, the sum of normalized progress,
//! * **Fairness** — the ratio between the slowest and fastest relative
//!   progress in the workload (1 = perfectly fair, 0 = starvation).
//!
//! # Example
//!
//! ```
//! use gpreempt_metrics::WorkloadMetrics;
//! use gpreempt_types::SimTime;
//!
//! let isolated = vec![SimTime::from_millis(10), SimTime::from_millis(20)];
//! let multi = vec![SimTime::from_millis(20), SimTime::from_millis(30)];
//! let m = WorkloadMetrics::from_times(&isolated, &multi).unwrap();
//! assert_eq!(m.ntt(), &[2.0, 1.5]);
//! assert!((m.antt() - 1.75).abs() < 1e-12);
//! assert!((m.stp() - (0.5 + 2.0 / 3.0)).abs() < 1e-12);
//! assert!((m.fairness() - 0.75).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod rt;
pub mod slo;

pub use rt::{RtMetrics, RtProcessMetrics};
pub use slo::{ArrivalCounts, SloMetrics, SloProcessMetrics};

use gpreempt_types::{SimError, SimTime};

/// The measured performance of one process: its isolated execution time and
/// its (average) turnaround time inside the multiprogrammed workload.
///
/// A **zero multiprogrammed time means the process starved**: it completed
/// no executions inside the workload. A starved process has an infinite
/// normalized turnaround time and zero normalized progress, so ANTT and
/// fairness degrade gracefully instead of erroring out.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProcessPerformance {
    /// Average execution time of the application when run alone.
    pub isolated: SimTime,
    /// Average turnaround time of its completed executions in the workload;
    /// zero when the process never completed an execution (starvation).
    pub multiprogrammed: SimTime,
}

impl ProcessPerformance {
    /// Creates a performance record.
    pub fn new(isolated: SimTime, multiprogrammed: SimTime) -> Self {
        ProcessPerformance {
            isolated,
            multiprogrammed,
        }
    }

    /// Whether the process completed no executions inside the workload.
    pub fn is_starved(&self) -> bool {
        self.multiprogrammed.is_zero()
    }

    /// Normalized turnaround time: slowdown relative to isolated execution
    /// (1.0 = no slowdown; larger is worse). A starved process has an
    /// infinite NTT.
    pub fn ntt(&self) -> f64 {
        if self.is_starved() {
            return f64::INFINITY;
        }
        self.multiprogrammed.ratio(self.isolated)
    }

    /// Normalized progress: fraction of its isolated speed the application
    /// achieved (1.0 = full speed; smaller is worse). The reciprocal of NTT;
    /// zero for a starved process.
    pub fn normalized_progress(&self) -> f64 {
        if self.is_starved() {
            return 0.0;
        }
        self.isolated.ratio(self.multiprogrammed)
    }
}

/// The Eyerman & Eeckhout metrics of one multiprogrammed workload run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMetrics {
    ntt: Vec<f64>,
    antt: f64,
    stp: f64,
    fairness: f64,
}

impl WorkloadMetrics {
    /// Computes the metrics from per-process performance records.
    ///
    /// A process with a zero multiprogrammed time is treated as starved
    /// (NTT = ∞, normalized progress = 0), which drives ANTT to infinity
    /// and fairness to 0.0 rather than producing an error.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidWorkload`] if the slice is empty or any
    /// isolated time is zero (the normalisation baseline would be
    /// undefined).
    pub fn new(processes: &[ProcessPerformance]) -> Result<Self, SimError> {
        if processes.is_empty() {
            return Err(SimError::invalid_workload(
                "metrics need at least one process",
            ));
        }
        for (i, p) in processes.iter().enumerate() {
            if p.isolated.is_zero() {
                return Err(SimError::invalid_workload(format!(
                    "process {i} has a zero isolated execution time"
                )));
            }
        }
        let ntt: Vec<f64> = processes.iter().map(ProcessPerformance::ntt).collect();
        let np: Vec<f64> = processes
            .iter()
            .map(ProcessPerformance::normalized_progress)
            .collect();
        let antt = ntt.iter().sum::<f64>() / ntt.len() as f64;
        let stp = np.iter().sum::<f64>();
        let min_np = np.iter().copied().fold(f64::INFINITY, f64::min);
        let max_np = np.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let fairness = if max_np > 0.0 { min_np / max_np } else { 0.0 };
        Ok(WorkloadMetrics {
            ntt,
            antt,
            stp,
            fairness,
        })
    }

    /// Convenience constructor from parallel slices of isolated and
    /// multiprogrammed execution times. A zero multiprogrammed time marks a
    /// starved process.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidWorkload`] if the slices differ in length,
    /// are empty, or contain zero isolated times.
    pub fn from_times(isolated: &[SimTime], multiprogrammed: &[SimTime]) -> Result<Self, SimError> {
        if isolated.len() != multiprogrammed.len() {
            return Err(SimError::invalid_workload(
                "isolated and multiprogrammed time slices differ in length",
            ));
        }
        let perf: Vec<ProcessPerformance> = isolated
            .iter()
            .zip(multiprogrammed)
            .map(|(&i, &m)| ProcessPerformance::new(i, m))
            .collect();
        Self::new(&perf)
    }

    /// Per-process normalized turnaround times, in process order.
    pub fn ntt(&self) -> &[f64] {
        &self.ntt
    }

    /// Average normalized turnaround time (lower is better, 1.0 is ideal).
    pub fn antt(&self) -> f64 {
        self.antt
    }

    /// System throughput: total normalized progress per unit time (higher is
    /// better, the number of processes is the ideal).
    pub fn stp(&self) -> f64 {
        self.stp
    }

    /// Fairness in `[0, 1]`: 1 when every process suffers the same slowdown,
    /// approaching 0 when some process starves.
    pub fn fairness(&self) -> f64 {
        self.fairness
    }

    /// Number of processes the metrics were computed over.
    pub fn len(&self) -> usize {
        self.ntt.len()
    }

    /// Whether the metrics cover no processes (never true for a constructed
    /// value).
    pub fn is_empty(&self) -> bool {
        self.ntt.is_empty()
    }
}

/// The improvement (speed-up) of `new` over `baseline` for a
/// lower-is-better metric such as NTT or ANTT. Values above 1 mean `new` is
/// better.
pub fn improvement_over(baseline: f64, new: f64) -> f64 {
    if new <= 0.0 {
        return 0.0;
    }
    baseline / new
}

/// The degradation of `new` relative to `baseline` for a higher-is-better
/// metric such as STP. Values above 1 mean `new` is worse (the paper reports
/// "STP degradation (times)" this way).
pub fn degradation_from(baseline: f64, new: f64) -> f64 {
    if new <= 0.0 {
        return f64::INFINITY;
    }
    baseline / new
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn single_process_at_full_speed() {
        let m = WorkloadMetrics::from_times(&[ms(10)], &[ms(10)]).unwrap();
        assert_eq!(m.ntt(), &[1.0]);
        assert_eq!(m.antt(), 1.0);
        assert_eq!(m.stp(), 1.0);
        assert_eq!(m.fairness(), 1.0);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }

    #[test]
    fn perfect_sharing_of_two_processes() {
        // Both run at exactly half speed: perfectly fair, STP = 1.
        let m = WorkloadMetrics::from_times(&[ms(10), ms(30)], &[ms(20), ms(60)]).unwrap();
        assert_eq!(m.antt(), 2.0);
        assert!((m.stp() - 1.0).abs() < 1e-12);
        assert_eq!(m.fairness(), 1.0);
    }

    #[test]
    fn starvation_shows_up_in_fairness() {
        // Process 0 runs at full speed, process 1 is slowed 100x.
        let m = WorkloadMetrics::from_times(&[ms(10), ms(10)], &[ms(10), ms(1000)]).unwrap();
        assert!(m.fairness() <= 0.011);
        assert!(m.stp() > 1.0);
        assert!(m.ntt()[1] > 99.0);
    }

    #[test]
    fn fairness_is_symmetric_in_process_order() {
        let a = WorkloadMetrics::from_times(&[ms(10), ms(20)], &[ms(40), ms(25)]).unwrap();
        let b = WorkloadMetrics::from_times(&[ms(20), ms(10)], &[ms(25), ms(40)]).unwrap();
        assert!((a.fairness() - b.fairness()).abs() < 1e-12);
        assert!((a.stp() - b.stp()).abs() < 1e-12);
        assert!((a.antt() - b.antt()).abs() < 1e-12);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(WorkloadMetrics::new(&[]).is_err());
        assert!(WorkloadMetrics::from_times(&[ms(1)], &[]).is_err());
        assert!(WorkloadMetrics::from_times(&[SimTime::ZERO], &[ms(1)]).is_err());
    }

    #[test]
    fn starved_process_degrades_metrics_instead_of_erroring() {
        // Process 1 never completed an execution (zero multiprogrammed
        // time): the run must yield metrics, not an InvalidWorkload error.
        let m = WorkloadMetrics::from_times(&[ms(10), ms(10)], &[ms(15), SimTime::ZERO]).unwrap();
        assert_eq!(m.ntt()[1], f64::INFINITY);
        assert_eq!(m.antt(), f64::INFINITY);
        // STP only counts the progress the survivors made.
        assert!((m.stp() - 10.0 / 15.0).abs() < 1e-12);
        // Total starvation of one process is maximal unfairness.
        assert_eq!(m.fairness(), 0.0);

        let p = ProcessPerformance::new(ms(10), SimTime::ZERO);
        assert!(p.is_starved());
        assert_eq!(p.ntt(), f64::INFINITY);
        assert_eq!(p.normalized_progress(), 0.0);
    }

    #[test]
    fn everyone_starved_is_still_well_formed() {
        let m = WorkloadMetrics::from_times(&[ms(10), ms(10)], &[SimTime::ZERO, SimTime::ZERO])
            .unwrap();
        assert_eq!(m.fairness(), 0.0);
        assert_eq!(m.stp(), 0.0);
        assert_eq!(m.antt(), f64::INFINITY);
    }

    #[test]
    fn improvement_and_degradation_helpers() {
        assert_eq!(improvement_over(4.0, 2.0), 2.0);
        assert_eq!(improvement_over(4.0, 0.0), 0.0);
        assert_eq!(degradation_from(2.0, 1.0), 2.0);
        assert_eq!(degradation_from(2.0, 0.0), f64::INFINITY);
    }

    #[test]
    fn ntt_and_progress_are_reciprocal() {
        let p = ProcessPerformance::new(ms(10), ms(25));
        assert!((p.ntt() * p.normalized_progress() - 1.0).abs() < 1e-12);
        assert!((p.ntt() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn stp_bounded_by_process_count() {
        let m = WorkloadMetrics::from_times(&[ms(10), ms(10), ms(10)], &[ms(15), ms(30), ms(12)])
            .unwrap();
        assert!(m.stp() <= 3.0);
        assert!(m.stp() > 0.0);
    }
}
