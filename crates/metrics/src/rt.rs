//! Real-time workload metrics: response times, deadline-miss rates and
//! tardiness.
//!
//! The preemptive real-time scheduling literature (e.g. arXiv:2401.16529)
//! evaluates GPU schedulers by how reliably tasks meet their deadlines
//! rather than by throughput alone. This module computes those metrics from
//! the per-execution records a simulation produces:
//!
//! * **response time** — how long one complete execution (replay iteration)
//!   took from its release to its completion,
//! * **deadline-miss rate** — the fraction of executions that finished
//!   after `release + deadline`,
//! * **tardiness** — by how much a late execution overshot its deadline
//!   (zero for on-time executions); the maximum is the headline number.
//!
//! Processes without a real-time contract contribute response times but no
//! misses — they have no deadline to miss — so mixed workloads degrade
//! gracefully.

use gpreempt_types::SimTime;

/// The real-time metrics of one process over its completed executions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RtProcessMetrics {
    /// The relative deadline the process was held to (`None` for processes
    /// without a real-time contract).
    pub deadline: Option<SimTime>,
    /// Completed executions observed.
    pub completed: u64,
    /// Executions that finished after their deadline (always zero without a
    /// deadline).
    pub missed: u64,
    /// Sum of response times over the completed executions.
    pub response_total: SimTime,
    /// Largest single response time.
    pub max_response: SimTime,
    /// Largest overshoot past the deadline (zero when every execution met
    /// it, or no deadline applies).
    pub max_tardiness: SimTime,
}

impl RtProcessMetrics {
    /// Computes the metrics of one process from its `(release, finish)`
    /// pairs, held to the given relative deadline.
    pub fn from_executions(
        deadline: Option<SimTime>,
        executions: impl IntoIterator<Item = (SimTime, SimTime)>,
    ) -> Self {
        let mut m = RtProcessMetrics {
            deadline,
            completed: 0,
            missed: 0,
            response_total: SimTime::ZERO,
            max_response: SimTime::ZERO,
            max_tardiness: SimTime::ZERO,
        };
        for (release, finish) in executions {
            let response = finish.saturating_sub(release);
            m.completed += 1;
            m.response_total += response;
            m.max_response = m.max_response.max(response);
            if let Some(deadline) = deadline {
                let tardiness = response.saturating_sub(deadline);
                if !tardiness.is_zero() {
                    m.missed += 1;
                    m.max_tardiness = m.max_tardiness.max(tardiness);
                }
            }
        }
        m
    }

    /// Mean response time over the completed executions (zero when none
    /// completed).
    pub fn mean_response(&self) -> SimTime {
        if self.completed == 0 {
            SimTime::ZERO
        } else {
            self.response_total / self.completed
        }
    }

    /// Fraction of executions that missed their deadline, in `[0, 1]`.
    /// A process with a deadline but **zero completed executions** counts
    /// as fully missing (rate 1.0): it starved, which is the worst possible
    /// real-time outcome, not a vacuous success. Processes without a
    /// deadline always report 0.0.
    pub fn miss_rate(&self) -> f64 {
        if self.deadline.is_none() {
            return 0.0;
        }
        if self.completed == 0 {
            return 1.0;
        }
        self.missed as f64 / self.completed as f64
    }

    /// Whether every completed execution met its deadline (and at least one
    /// completed, when a deadline applies).
    pub fn all_met(&self) -> bool {
        self.miss_rate() == 0.0
    }
}

/// The real-time metrics of a whole workload run: one
/// [`RtProcessMetrics`] per process, plus workload-level aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct RtMetrics {
    per_process: Vec<RtProcessMetrics>,
}

impl RtMetrics {
    /// Assembles the workload metrics from per-process records.
    pub fn new(per_process: Vec<RtProcessMetrics>) -> Self {
        RtMetrics { per_process }
    }

    /// The per-process metrics, in process order.
    pub fn per_process(&self) -> &[RtProcessMetrics] {
        &self.per_process
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.per_process.len()
    }

    /// Whether the metrics cover no processes.
    pub fn is_empty(&self) -> bool {
        self.per_process.is_empty()
    }

    /// Completed executions across every process.
    pub fn completed(&self) -> u64 {
        self.per_process.iter().map(|p| p.completed).sum()
    }

    /// The `(missed, total)` execution counts over every process with a
    /// deadline — the single place the starved-process rule lives: a
    /// deadline process with zero completions contributes one synthetic
    /// fully-missed execution.
    fn deadline_counts(&self) -> (u64, u64) {
        let mut missed = 0u64;
        let mut total = 0u64;
        for p in &self.per_process {
            if p.deadline.is_none() {
                continue;
            }
            if p.completed == 0 {
                missed += 1;
                total += 1;
            } else {
                missed += p.missed;
                total += p.completed;
            }
        }
        (missed, total)
    }

    /// Missed executions across every process with a deadline. Starved
    /// deadline processes (zero completions) count one synthetic miss so
    /// the workload-level rate reflects them.
    pub fn missed(&self) -> u64 {
        self.deadline_counts().0
    }

    /// The workload-level deadline-miss rate: missed executions over all
    /// executions of deadline-carrying processes (starved ones contribute a
    /// synthetic fully-missed execution). 0.0 when no process has a
    /// deadline.
    pub fn miss_rate(&self) -> f64 {
        let (missed, total) = self.deadline_counts();
        if total == 0 {
            0.0
        } else {
            missed as f64 / total as f64
        }
    }

    /// Mean response time across every completed execution of every
    /// process.
    pub fn mean_response(&self) -> SimTime {
        let completed = self.completed();
        if completed == 0 {
            return SimTime::ZERO;
        }
        let total: SimTime = self.per_process.iter().map(|p| p.response_total).sum();
        total / completed
    }

    /// The largest overshoot past any deadline in the workload.
    pub fn max_tardiness(&self) -> SimTime {
        self.per_process
            .iter()
            .map(|p| p.max_tardiness)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Whether every deadline in the workload was met.
    pub fn all_met(&self) -> bool {
        self.per_process.iter().all(RtProcessMetrics::all_met)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> SimTime {
        SimTime::from_micros(v)
    }

    #[test]
    fn on_time_executions_have_zero_miss_rate() {
        let p = RtProcessMetrics::from_executions(
            Some(us(100)),
            vec![(us(0), us(80)), (us(80), us(170)), (us(170), us(270))],
        );
        assert_eq!(p.completed, 3);
        assert_eq!(p.missed, 0);
        assert_eq!(p.miss_rate(), 0.0);
        assert!(p.all_met());
        assert_eq!(p.mean_response(), us(90)); // (80 + 90 + 100) / 3
        assert_eq!(p.max_response, us(100));
        assert_eq!(p.max_tardiness, SimTime::ZERO);
    }

    #[test]
    fn late_executions_count_misses_and_tardiness() {
        let p = RtProcessMetrics::from_executions(
            Some(us(100)),
            vec![(us(0), us(90)), (us(90), us(240)), (us(240), us(350))],
        );
        // Response times: 90 (met), 150 (missed by 50), 110 (missed by 10).
        assert_eq!(p.completed, 3);
        assert_eq!(p.missed, 2);
        assert!((p.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.max_tardiness, us(50));
        assert!(!p.all_met());
    }

    #[test]
    fn no_deadline_means_no_misses() {
        let p = RtProcessMetrics::from_executions(None, vec![(us(0), us(1_000_000))]);
        assert_eq!(p.miss_rate(), 0.0);
        assert!(p.all_met());
        assert_eq!(p.max_tardiness, SimTime::ZERO);
        assert_eq!(p.mean_response(), us(1_000_000));
    }

    #[test]
    fn starved_deadline_process_counts_as_fully_missed() {
        let starved = RtProcessMetrics::from_executions(Some(us(100)), vec![]);
        assert_eq!(starved.completed, 0);
        assert_eq!(starved.miss_rate(), 1.0);
        assert!(!starved.all_met());
        assert_eq!(starved.mean_response(), SimTime::ZERO);

        // A starved process *without* a deadline is vacuously fine.
        let legacy = RtProcessMetrics::from_executions(None, vec![]);
        assert_eq!(legacy.miss_rate(), 0.0);
    }

    #[test]
    fn workload_aggregates_combine_processes() {
        let m = RtMetrics::new(vec![
            RtProcessMetrics::from_executions(
                Some(us(100)),
                vec![(us(0), us(50)), (us(50), us(180))], // one miss, tardiness 30
            ),
            RtProcessMetrics::from_executions(Some(us(200)), vec![(us(0), us(150))]), // met
            RtProcessMetrics::from_executions(None, vec![(us(0), us(999))]),          // no deadline
        ]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.completed(), 4);
        assert_eq!(m.missed(), 1);
        // 1 miss over the 3 executions of deadline-carrying processes.
        assert!((m.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(m.max_tardiness(), us(30));
        assert!(!m.all_met());
        // (50 + 130 + 150 + 999) / 4
        assert_eq!(m.mean_response(), SimTime::from_nanos(332_250));
    }

    #[test]
    fn starved_process_dominates_the_workload_rate() {
        let m = RtMetrics::new(vec![
            RtProcessMetrics::from_executions(Some(us(100)), vec![(us(0), us(50))]),
            RtProcessMetrics::from_executions(Some(us(100)), vec![]),
        ]);
        assert_eq!(m.missed(), 1);
        assert!((m.miss_rate() - 0.5).abs() < 1e-12);
        assert!(!m.all_met());
    }

    #[test]
    fn empty_workload_is_well_formed() {
        let m = RtMetrics::new(vec![]);
        assert!(m.is_empty());
        assert_eq!(m.miss_rate(), 0.0);
        assert_eq!(m.mean_response(), SimTime::ZERO);
        assert_eq!(m.max_tardiness(), SimTime::ZERO);
        assert!(m.all_met());
    }
}
