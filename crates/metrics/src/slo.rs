//! Service-level-objective metrics for open-arrival workloads.
//!
//! A GPU offered as a service is judged the way any online service is: by
//! the tail of its response-time distribution and by how much offered load
//! it absorbs before shedding. This module condenses the per-request
//! records of an open-arrival run into those numbers:
//!
//! * **latency percentiles** — p50/p99/p99.9 of release-to-completion
//!   response time (the SLO quantities; NaN when nothing completed, which
//!   the report layer renders as `-`),
//! * **shed rate** — the fraction of released requests dropped at the
//!   admission gate (bounded backlog or policy decision),
//! * **queue depth** — time-weighted mean and peak backlog, the leading
//!   indicator of saturation,
//! * **goodput** — completed requests per second of simulated time.
//!
//! Closed-loop processes degrade gracefully: their release machinery is
//! inert (zero released/admitted/shed counts, an always-empty queue), and
//! their response times equal their turnarounds.

use gpreempt_sim::stats::percentile;
use gpreempt_types::SimTime;

/// The admission-side counters of one process, as observed by the host's
/// release machinery. A plain bag of scalars so the metrics crate stays
/// independent of the host model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ArrivalCounts {
    /// Requests released by the arrival process (zero for closed-loop
    /// processes, whose release machinery is inert).
    pub released: u64,
    /// Requests admitted past the gate (started or queued).
    pub admitted: u64,
    /// Requests dropped by load shedding.
    pub shed: u64,
    /// Time-weighted mean backlog depth over the simulated horizon.
    pub mean_queue_depth: f64,
    /// Largest backlog depth ever reached.
    pub max_queue_depth: u32,
}

/// The SLO metrics of one process over its completed requests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloProcessMetrics {
    /// Admission-side counters.
    pub counts: ArrivalCounts,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Median response time in microseconds (NaN when nothing completed).
    pub p50_us: f64,
    /// 99th-percentile response time in microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile response time in microseconds.
    pub p999_us: f64,
    /// Mean response time in microseconds.
    pub mean_us: f64,
    /// Worst response time in microseconds.
    pub max_us: f64,
}

impl SloProcessMetrics {
    /// Computes one process's metrics from its admission counters and the
    /// response times (release → completion) of its completed requests, in
    /// microseconds. Latency statistics of an empty slice are NaN, never a
    /// fake zero.
    pub fn from_responses(counts: ArrivalCounts, responses_us: &[f64]) -> Self {
        let completed = responses_us.len() as u64;
        let mean_us = gpreempt_sim::stats::mean(responses_us);
        let max_us = responses_us.iter().copied().fold(f64::NAN, f64::max);
        SloProcessMetrics {
            counts,
            completed,
            p50_us: percentile(responses_us, 50.0),
            p99_us: percentile(responses_us, 99.0),
            p999_us: percentile(responses_us, 99.9),
            mean_us,
            max_us,
        }
    }

    /// Fraction of released requests that were shed, in `[0, 1]` (zero when
    /// nothing was released).
    pub fn shed_rate(&self) -> f64 {
        if self.counts.released == 0 {
            0.0
        } else {
            self.counts.shed as f64 / self.counts.released as f64
        }
    }

    /// Whether the process's p99 stayed at or below `slo`, with at least one
    /// completion to attest it. A NaN p99 (nothing completed) fails any SLO.
    pub fn meets_p99(&self, slo: SimTime) -> bool {
        self.p99_us <= slo.as_micros_f64()
    }
}

/// The SLO metrics of a whole open-arrival run: per-process breakdown plus
/// workload-level aggregates pooled over every completed request.
#[derive(Debug, Clone, PartialEq)]
pub struct SloMetrics {
    per_process: Vec<SloProcessMetrics>,
    horizon: SimTime,
    released: u64,
    shed: u64,
    completed: u64,
    p50_us: f64,
    p99_us: f64,
    p999_us: f64,
}

impl SloMetrics {
    /// Assembles the workload metrics: one `(counts, response times in µs)`
    /// pair per process, plus the simulated horizon the run covered (used
    /// for goodput).
    pub fn new(horizon: SimTime, processes: Vec<(ArrivalCounts, Vec<f64>)>) -> Self {
        let mut pooled: Vec<f64> = Vec::new();
        let mut per_process = Vec::with_capacity(processes.len());
        let (mut released, mut shed) = (0u64, 0u64);
        for (counts, responses) in &processes {
            per_process.push(SloProcessMetrics::from_responses(*counts, responses));
            released += counts.released;
            shed += counts.shed;
            pooled.extend_from_slice(responses);
        }
        SloMetrics {
            per_process,
            horizon,
            released,
            shed,
            completed: pooled.len() as u64,
            p50_us: percentile(&pooled, 50.0),
            p99_us: percentile(&pooled, 99.0),
            p999_us: percentile(&pooled, 99.9),
        }
    }

    /// The per-process metrics, in process order.
    pub fn per_process(&self) -> &[SloProcessMetrics] {
        &self.per_process
    }

    /// The simulated horizon the run covered.
    pub fn horizon(&self) -> SimTime {
        self.horizon
    }

    /// Total requests released across the workload.
    pub fn released(&self) -> u64 {
        self.released
    }

    /// Total requests shed across the workload.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Total requests completed across the workload.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Workload-level shed rate in `[0, 1]`.
    pub fn shed_rate(&self) -> f64 {
        if self.released == 0 {
            0.0
        } else {
            self.shed as f64 / self.released as f64
        }
    }

    /// Median response time pooled over every completed request, in
    /// microseconds (NaN when nothing completed).
    pub fn p50_us(&self) -> f64 {
        self.p50_us
    }

    /// Pooled 99th-percentile response time in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.p99_us
    }

    /// Pooled 99.9th-percentile response time in microseconds.
    pub fn p999_us(&self) -> f64 {
        self.p999_us
    }

    /// Completed requests per second of simulated time (goodput). NaN for a
    /// zero horizon.
    pub fn throughput_per_sec(&self) -> f64 {
        let secs = self.horizon.as_micros_f64() / 1e6;
        if secs > 0.0 {
            self.completed as f64 / secs
        } else {
            f64::NAN
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts(released: u64, admitted: u64, shed: u64) -> ArrivalCounts {
        ArrivalCounts {
            released,
            admitted,
            shed,
            mean_queue_depth: 0.5,
            max_queue_depth: 3,
        }
    }

    #[test]
    fn percentiles_over_a_known_distribution() {
        let responses: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let m = SloProcessMetrics::from_responses(counts(100, 100, 0), &responses);
        assert_eq!(m.completed, 100);
        assert!((m.p50_us - 50.5).abs() < 1e-9);
        assert!((m.p99_us - 99.01).abs() < 1e-9);
        assert!(m.p999_us > m.p99_us && m.p999_us <= 100.0);
        assert!((m.mean_us - 50.5).abs() < 1e-9);
        assert_eq!(m.max_us, 100.0);
        assert_eq!(m.shed_rate(), 0.0);
        assert!(m.meets_p99(SimTime::from_micros(100)));
        assert!(!m.meets_p99(SimTime::from_micros(50)));
    }

    #[test]
    fn empty_process_is_nan_latency_not_zero() {
        let m = SloProcessMetrics::from_responses(counts(5, 0, 5), &[]);
        assert_eq!(m.completed, 0);
        assert!(m.p50_us.is_nan());
        assert!(m.p99_us.is_nan());
        assert!(m.mean_us.is_nan());
        assert!(m.max_us.is_nan());
        assert_eq!(m.shed_rate(), 1.0);
        assert!(
            !m.meets_p99(SimTime::from_millis(1_000)),
            "a process that completed nothing attests no SLO"
        );
    }

    #[test]
    fn workload_aggregates_pool_all_responses() {
        let m = SloMetrics::new(
            SimTime::from_millis(2),
            vec![
                (counts(3, 3, 0), vec![100.0, 200.0, 300.0]),
                (counts(4, 3, 1), vec![400.0]),
            ],
        );
        assert_eq!(m.released(), 7);
        assert_eq!(m.shed(), 1);
        assert_eq!(m.completed(), 4);
        assert!((m.shed_rate() - 1.0 / 7.0).abs() < 1e-12);
        assert!((m.p50_us() - 250.0).abs() < 1e-9);
        assert!(m.p99_us() > 390.0);
        // 4 completions over 2ms of simulated time.
        assert!((m.throughput_per_sec() - 2000.0).abs() < 1e-6);
        assert_eq!(m.per_process().len(), 2);
    }

    #[test]
    fn zero_released_and_zero_horizon_are_graceful() {
        let m = SloMetrics::new(SimTime::ZERO, vec![(ArrivalCounts::default(), vec![])]);
        assert_eq!(m.shed_rate(), 0.0);
        assert!(m.p50_us().is_nan());
        assert!(m.throughput_per_sec().is_nan());
    }
}
